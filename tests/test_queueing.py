"""Unit tests for the signalized-approach queue simulator.

These check the *physical invariants* the identification algorithms
rely on: no red-running, FIFO lane order, jam spacing, stop durations
bounded by the signal, and dwell behaviour.
"""

import numpy as np
import pytest

from repro.lights.controller import StaticController
from repro.lights.schedule import LightSchedule
from repro.sim.arrivals import PoissonArrivals
from repro.sim.queueing import ApproachConfig, SignalizedApproachSim
from repro.sim.vehicle import VehicleParams


SCHED = LightSchedule(cycle_s=90.0, red_s=40.0, offset_s=0.0)


def make_sim(rate=400.0, taxi_fraction=1.0, dwell_probability=0.0, **kw):
    cfg = ApproachConfig(
        segment_length_m=kw.pop("segment_length_m", 400.0),
        taxi_fraction=taxi_fraction,
        dwell_probability=dwell_probability,
        record_all_vehicles=True,
        **kw,
    )
    return SignalizedApproachSim(
        StaticController(SCHED), PoissonArrivals(rate), cfg, segment_id=0
    )


@pytest.fixture(scope="module")
def tracks():
    return make_sim().run(0.0, 1800.0, rng=5)


class TestBasics:
    def test_produces_tracks(self, tracks):
        assert len(tracks) > 50

    def test_positions_nonincreasing(self, tracks):
        for tr in tracks:
            assert np.all(np.diff(tr.dist_to_stopline_m) <= 1e-9)

    def test_positions_nonnegative(self, tracks):
        for tr in tracks:
            assert np.all(tr.dist_to_stopline_m >= 0)

    def test_speeds_nonnegative_and_bounded(self, tracks):
        for tr in tracks:
            assert np.all(tr.speed_mps >= -1e-9)
            assert np.all(tr.speed_mps <= 25.0)

    def test_times_are_1hz(self, tracks):
        for tr in tracks:
            assert np.all(np.diff(tr.t) == pytest.approx(1.0))

    def test_rejects_empty_window(self):
        with pytest.raises(ValueError):
            make_sim().run(10.0, 10.0, rng=0)


class TestSignalCompliance:
    def test_no_crossing_during_red(self, tracks):
        """A crossing vehicle's final (exit) second must be green.

        A vehicle merely *stopped at the line* when the window ends is
        not a crossing — distinguish by its final speed.
        """
        for tr in tracks:
            if tr.dist_to_stopline_m[-1] <= 0.5 and tr.speed_mps[-1] > 0.5:
                t_exit = tr.t[-1]
                assert not bool(SCHED.is_red(t_exit)), f"vehicle {tr.vehicle_id} exited at red"

    def test_front_vehicle_waits_at_line_during_red(self):
        # a single vehicle arriving at strong red must stop at the line
        sim = make_sim(rate=30.0)
        tracks = sim.run(0.0, 900.0, rng=8)
        waited = 0
        for tr in tracks:
            stopped_at_line = (tr.dist_to_stopline_m < 1.0) & (tr.speed_mps < 0.2)
            if stopped_at_line.any():
                waited += 1
                for t in tr.t[stopped_at_line]:
                    # stopping right at the line only happens under red
                    # (or in the discharge second right after)
                    assert SCHED.time_in_cycle(t) <= SCHED.red_s + 2.0
        assert waited > 0

    def test_stop_durations_bounded_by_red_without_dwells(self, tracks):
        durations = [
            e - s for tr in tracks for (s, e) in tr.stop_intervals()
        ]
        assert durations, "expected some queue waits"
        # without passenger dwells, no single stop can out-last red by
        # more than the discharge transient
        assert max(durations) <= SCHED.red_s + 15.0


class TestLaneDiscipline:
    def test_jam_spacing_between_moving_vehicles(self):
        sim = make_sim(rate=700.0)
        tracks = sim.run(0.0, 900.0, rng=3)
        # reconstruct per-second positions and check pairwise gaps
        by_time = {}
        for tr in tracks:
            for t, x in zip(tr.t, tr.dist_to_stopline_m):
                by_time.setdefault(t, []).append(x)
        p = VehicleParams()
        for t, xs in by_time.items():
            # exclude vehicles mid-crossing: their negative positions are
            # recorded clipped to 0, which fakes a short gap
            xs = np.sort([x for x in xs if x > 0.5])
            if xs.size > 1:
                gaps = np.diff(xs)
                assert gaps.min() >= p.jam_gap_m - 1.5, f"gap violation at t={t}"


class TestDwells:
    def test_dwell_produces_long_stop_and_flag_flip(self):
        sim = make_sim(rate=150.0, dwell_probability=1.0,
                       dwell_duration_range_s=(40.0, 50.0))
        tracks = sim.run(0.0, 1200.0, rng=4)
        flips = sum(1 for tr in tracks if (tr.passenger != tr.passenger[0]).any())
        assert flips > 0, "dwells must toggle the passenger flag"

    def test_dwellers_do_not_block_lane(self):
        # with pull-over dwells, a dwelling taxi must not trap followers:
        # traffic continues to exit at a similar rate as without dwells
        base = make_sim(rate=400.0, dwell_probability=0.0).run(0.0, 1500.0, rng=6)
        dwell = make_sim(rate=400.0, dwell_probability=0.5,
                         dwell_duration_range_s=(60.0, 90.0)).run(0.0, 1500.0, rng=6)
        exits_base = sum(1 for tr in base if tr.dist_to_stopline_m[-1] <= 0.5)
        exits_dwell = sum(1 for tr in dwell if tr.dist_to_stopline_m[-1] <= 0.5)
        assert exits_dwell >= 0.6 * exits_base


class TestTaxiFraction:
    def test_only_taxis_recorded_by_default(self):
        cfg = ApproachConfig(segment_length_m=400.0, taxi_fraction=0.5,
                             record_all_vehicles=False)
        sim = SignalizedApproachSim(
            StaticController(SCHED), PoissonArrivals(400.0), cfg, segment_id=0
        )
        tracks = sim.run(0.0, 900.0, rng=2)
        assert all(tr.is_taxi for tr in tracks)

    def test_record_all_includes_ambient(self):
        tracks = make_sim(taxi_fraction=0.5).run(0.0, 900.0, rng=2)
        assert any(not tr.is_taxi for tr in tracks)
        assert any(tr.is_taxi for tr in tracks)


class TestDeterminism:
    def test_same_seed_same_tracks(self):
        a = make_sim().run(0.0, 600.0, rng=11)
        b = make_sim().run(0.0, 600.0, rng=11)
        assert len(a) == len(b)
        for ta, tb in zip(a, b):
            np.testing.assert_array_equal(ta.t, tb.t)
            np.testing.assert_array_equal(ta.dist_to_stopline_m, tb.dist_to_stopline_m)

    def test_different_seed_differs(self):
        a = make_sim().run(0.0, 600.0, rng=11)
        b = make_sim().run(0.0, 600.0, rng=12)
        assert len(a) != len(b) or any(
            len(x) != len(y) or not np.array_equal(x.t, y.t) for x, y in zip(a, b)
        )


class TestPropertyRandomSchedules:
    """Signal-compliance invariants must hold for arbitrary timings."""

    from hypothesis import given, settings, strategies as st

    @given(
        cycle=st.floats(40.0, 200.0),
        red_frac=st.floats(0.2, 0.7),
        offset=st.floats(0.0, 200.0),
        rate=st.floats(100.0, 600.0),
    )
    @settings(max_examples=12, deadline=None)
    def test_no_red_crossing_any_schedule(self, cycle, red_frac, offset, rate):
        sched = LightSchedule(cycle, cycle * red_frac, offset)
        sim = SignalizedApproachSim(
            StaticController(sched),
            PoissonArrivals(rate),
            ApproachConfig(segment_length_m=300.0, taxi_fraction=1.0,
                           dwell_probability=0.0, record_all_vehicles=True),
            segment_id=0,
        )
        t0, t1 = 0.0, 900.0
        tracks = sim.run(t0, t1, rng=1)
        for tr in tracks:
            assert np.all(np.diff(tr.dist_to_stopline_m) <= 1e-9)
            assert np.all(tr.dist_to_stopline_m >= 0.0)
            # crossing = reached the line while still moving.  A track
            # cut off by the simulation horizon is excluded: a vehicle
            # braking into the stop line at t1 can show a positive
            # step-average speed at distance ~0 without ever crossing.
            truncated = tr.t[-1] >= t1 - 1.0
            if (not truncated and tr.dist_to_stopline_m[-1] <= 0.5
                    and tr.speed_mps[-1] > 0.5):
                assert not bool(sched.is_red(float(tr.t[-1])))


class TestAdaptiveLiveFeedback:
    """The sim binds its demand recorder to adaptive controllers and the
    realized schedule responds to the approach's own traffic."""

    def _adaptive_sim(self, controller, rate):
        cfg = ApproachConfig(
            segment_length_m=400.0, taxi_fraction=1.0,
            dwell_probability=0.0, record_all_vehicles=True,
        )
        return SignalizedApproachSim(controller, PoissonArrivals(rate), cfg)

    def test_recorder_bound_only_for_adaptive(self):
        from repro.lights.controller import GapActuatedController

        sim = make_sim()
        sim.run(0.0, 300.0, rng=1)
        assert sim.demand_recorder is None

        adaptive = GapActuatedController(SCHED, alpha=1.0)
        sim_a = self._adaptive_sim(adaptive, rate=300.0)
        sim_a.run(0.0, 600.0, rng=1)
        assert sim_a.demand_recorder is not None
        assert adaptive.sim_bound

    def test_green_tracks_approach_demand(self):
        from repro.lights.controller import GapActuatedController

        heavy_ctrl = GapActuatedController(SCHED, alpha=1.0)
        self._adaptive_sim(heavy_ctrl, rate=500.0).run(0.0, 3600.0, rng=3)
        heavy_green = np.mean(
            [s.green_s for _, s in heavy_ctrl.realized_cycles(600.0, 3600.0)]
        )

        light_ctrl = GapActuatedController(SCHED, alpha=1.0)
        self._adaptive_sim(light_ctrl, rate=30.0).run(0.0, 3600.0, rng=3)
        light_green = np.mean(
            [s.green_s for _, s in light_ctrl.realized_cycles(600.0, 3600.0)]
        )
        assert heavy_green > light_green

    def test_live_bound_controller_keeps_interface_contract(self):
        from repro.lights.controller import ActuatedController
        from repro.lights.schedule import Phase

        ctrl = ActuatedController(SCHED, alpha=1.0)
        self._adaptive_sim(ctrl, rate=400.0).run(0.0, 1800.0, rng=5)
        for t in np.linspace(0.0, 1795.0, 120):
            t = float(t)
            sched = ctrl.schedule_at(t)
            assert ctrl.is_red(t) == bool(sched.is_red(t))
            assert ctrl.wait_if_arriving(t) == sched.wait_if_arriving(t)
            assert ctrl.phase(t) in (Phase.RED, Phase.GREEN)

    def test_rerun_replaces_stale_recorder(self):
        from repro.lights.controller import FuzzyController

        ctrl = FuzzyController(SCHED, alpha=1.0)
        sim = self._adaptive_sim(ctrl, rate=300.0)
        sim.run(0.0, 900.0, rng=2)
        first = sim.demand_recorder
        sim.run(0.0, 900.0, rng=2)
        assert sim.demand_recorder is not first
        # determinism: same seed, same realized timeline
        a = [s.cycle_s for _, s in ctrl.realized_cycles(0.0, 900.0)]
        sim.run(0.0, 900.0, rng=2)
        b = [s.cycle_s for _, s in ctrl.realized_cycles(0.0, 900.0)]
        assert a == b

    def test_recorder_signal_windows(self):
        from repro.sim.queueing import ApproachDemandRecorder

        rec = ApproachDemandRecorder()
        for i in range(10):
            rec.record_step(float(i), i % 4)
        rec.record_arrival(2.5)
        rec.record_arrival(4.5)
        rec.record_arrival(8.5)
        sig = rec.signal(0.0, 10.0)
        assert sig.queue_len == 3.0
        assert sig.headway_s == pytest.approx((8.5 - 2.5) / 2)
        empty = rec.signal(20.0, 30.0)
        assert empty.queue_len == 0.0
        assert empty.headway_s == float("inf")
        one = rec.signal(8.0, 10.0)
        assert one.headway_s == float("inf")  # single arrival: no headway
