"""Edge cases for result types, stats, and small API surfaces."""

import numpy as np
import pytest

from repro.core.monitor import HistoricalProfile, MonitorSeries
from repro.core.signal_types import (
    ChangePointEstimate,
    CycleEstimate,
    RedEstimate,
    ScheduleEstimate,
)
from repro.lights.schedule import LightSchedule
from repro.network.geometry import LocalFrame
from repro.trace.records import TraceArrays
from repro.trace.stats import compute_statistics, consecutive_pairs


def make_estimate():
    sched = LightSchedule(100.0, 40.0, 12.0)
    return ScheduleEstimate(
        intersection_id=3,
        approach="EW",
        at_time=5000.0,
        schedule=sched,
        cycle=CycleEstimate(100.0, 18, 50.0, 9.5, 321, enhanced=True),
        red=RedEstimate(40.0, 2, np.arange(6) * 20.0, np.ones(5), 77, 4),
        change=ChangePointEstimate(12.0, 52.0, np.zeros(100), np.zeros(100)),
    )


class TestScheduleEstimate:
    def test_derived_properties(self):
        est = make_estimate()
        assert est.cycle_s == 100.0
        assert est.red_s == 40.0
        assert est.green_s == pytest.approx(60.0)

    def test_row_contains_key_fields(self):
        row = make_estimate().row()
        assert "(3,EW)" in row and "cycle=100.0s" in row and "quality=9.5" in row

    def test_estimate_bookkeeping(self):
        est = make_estimate()
        assert est.cycle.enhanced is True
        assert est.cycle.n_samples == 321
        assert est.red.n_stops_used == 77
        assert est.red.n_stops_rejected == 4


class TestMonitorSeriesEdges:
    def test_empty_series(self):
        s = MonitorSeries(t=np.empty(0), cycle_s=np.empty(0), quality=np.empty(0))
        assert len(s) == 0
        assert np.isnan(s.valid_fraction())

    def test_historical_profile_support_counts(self):
        s = MonitorSeries(
            t=np.array([0.0, 1800.0, 3600.0]),
            cycle_s=np.array([98.0, np.nan, 100.0]),
            quality=np.ones(3),
        )
        h = HistoricalProfile([s], bin_s=1800.0)
        assert h.support[0] == 1
        assert h.support[1] == 0  # the NaN slot contributes nothing
        assert h.support[2] == 1


class TestStatsEdges:
    def test_empty_trace_statistics(self):
        st = compute_statistics(TraceArrays.empty(), LocalFrame())
        assert st.n_records == 0 and st.n_taxis == 0
        assert np.isnan(st.mean_update_interval_s)
        assert st.row()  # printable even when empty

    def test_single_record_no_pairs(self):
        tr = TraceArrays([1], [0.0], [114.05], [22.54], [30.0])
        pairs = consecutive_pairs(tr)
        assert len(pairs) == 0
        st = compute_statistics(tr, LocalFrame())
        assert st.n_records == 1

    def test_pairs_never_cross_taxis(self, rng):
        n = 100
        tr = TraceArrays(
            taxi_id=rng.integers(0, 5, n),
            t=np.sort(rng.uniform(0, 1000, n)),
            lon=np.full(n, 114.05),
            lat=np.full(n, 22.54),
            speed_kmh=rng.uniform(0, 60, n),
        )
        pairs = consecutive_pairs(tr)
        # every pair's dt must be non-negative (within-taxi ordering)
        assert np.all(pairs.dt_s >= 0)


class TestLightScheduleScalarVectorConsistency:
    @pytest.mark.parametrize("t", [0.0, 39.0, 39.5, 97.9, 98.0, 12345.6])
    def test_scalar_matches_vector(self, t):
        s = LightSchedule(98.0, 39.0, 11.0)
        scalar = bool(s.is_red(t))
        vector = bool(s.is_red(np.array([t]))[0])
        assert scalar == vector
        assert float(s.time_in_cycle(t)) == pytest.approx(
            float(s.time_in_cycle(np.array([t]))[0])
        )

    def test_is_green_scalar_semantics(self):
        s = LightSchedule(98.0, 39.0, 0.0)
        assert s.is_green(50.0) is True or s.is_green(50.0) == True  # noqa: E712
        assert bool(s.is_green(10.0)) is False
