"""Backend parity: serial, process-pool, and batched identification.

The batched backend (``repro.core.batch``) re-implements the per-light
pipeline as whole-city array kernels.  Its contract is not "close": the
estimate maps must match the serial reference **bit-for-bit** and the
failure maps must carry the same keys, stages, and exception types —
including when a slice of the city is poisoned.  These tests pin that
contract on the seeded test city and on a ~10%-corrupted variant.
"""

import numpy as np
import pytest

from repro.core import PipelineConfig, identify_many
from repro.matching.partition import LightPartition
from repro.trace.store import PartitionStore

from tests.test_faults import synth_partition


def _est_tuple(est):
    """The numbers parity is asserted on, per estimate."""
    return (
        est.cycle_s,
        est.red_s,
        est.green_s,
        est.schedule.offset_s,
        est.change.red_to_green_s,
        est.change.green_to_red_s,
    )


def _assert_parity(ref, other, what):
    e_ref, f_ref = ref
    e_oth, f_oth = other
    assert sorted(e_oth) == sorted(e_ref), f"{what}: estimate keys differ"
    assert sorted(f_oth) == sorted(f_ref), f"{what}: failure keys differ"
    for key in e_ref:
        assert _est_tuple(e_oth[key]) == _est_tuple(e_ref[key]), (
            f"{what}: estimate for {key} differs"
        )
    for key in f_ref:
        assert f_oth[key].stage == f_ref[key].stage, key
        assert f_oth[key].error_type == f_ref[key].error_type, key
        assert f_oth[key].message == f_ref[key].message, key


def _poisoned_city(partitions):
    """The 8-light seeded city plus 2 synthetic lights, 1 in 10 corrupt."""
    city = dict(partitions)
    healthy = synth_partition(seed=3, iid=100)
    dead = synth_partition(speed=0.0, iid=101)  # flat signal: expected failure
    city[healthy.key] = healthy
    city[dead.key] = dead
    bad_key = sorted(partitions)[0]
    p = city[bad_key]
    city[bad_key] = LightPartition(
        p.intersection_id, p.approach, p.trace, p.segment_id, np.empty(3)
    )
    return city, bad_key, dead.key


class TestBackendParity:
    def test_batched_matches_serial_bitwise(self, partitions):
        ref = identify_many(partitions, 5400.0, serial=True)
        out = identify_many(partitions, 5400.0, backend="batched")
        assert len(ref[0]) > 0, "fixture city must identify some lights"
        _assert_parity(ref, out, "batched")

    def test_batched_accepts_store_or_dict(self, partitions):
        store = PartitionStore.from_partitions(partitions)
        from_dict = identify_many(partitions, 5400.0, backend="batched")
        from_store = identify_many(store, 5400.0, backend="batched")
        _assert_parity(from_dict, from_store, "store-backed batched")

    @pytest.mark.slow
    def test_process_matches_serial(self, partitions):
        ref = identify_many(partitions, 5400.0, serial=True)
        out = identify_many(partitions, 5400.0, backend="process", max_workers=2)
        _assert_parity(ref, out, "process")

    @pytest.mark.slow
    def test_process_with_shared_store_matches_serial(self, partitions):
        store = PartitionStore.from_partitions(partitions)
        ref = identify_many(partitions, 5400.0, serial=True)
        out = identify_many(store, 5400.0, backend="process", max_workers=2)
        _assert_parity(ref, out, "process+store")

    def test_shard_matches_serial_bitwise(self, partitions):
        ref = identify_many(partitions, 5400.0, serial=True)
        out = identify_many(partitions, 5400.0, backend="shard", max_workers=1)
        _assert_parity(ref, out, "shard")

    def test_shard_accepts_store_or_dict(self, partitions):
        store = PartitionStore.from_partitions(partitions)
        from_dict = identify_many(
            partitions, 5400.0, backend="shard", max_workers=1
        )
        from_store = identify_many(store, 5400.0, backend="shard", max_workers=1)
        _assert_parity(from_dict, from_store, "store-backed shard")

    @pytest.mark.slow
    def test_shard_pool_matches_serial(self, partitions):
        ref = identify_many(partitions, 5400.0, serial=True)
        out = identify_many(partitions, 5400.0, backend="shard", max_workers=2)
        _assert_parity(ref, out, "shard@2w")

    def test_unknown_backend_rejected(self, partitions):
        with pytest.raises(ValueError, match="backend"):
            identify_many(partitions, 5400.0, backend="gpu")


class TestPoisonedCityParity:
    def test_poisoned_city_all_backends(self, partitions):
        city, bad_key, dead_key = _poisoned_city(partitions)
        ref = identify_many(city, 5400.0, serial=True)
        assert bad_key in ref[1], "corrupt partition must fail"
        assert ref[1][bad_key].error_type == "ValueError"
        assert ref[1][bad_key].stage == "samples"

        out = identify_many(city, 5400.0, backend="batched")
        _assert_parity(ref, out, "batched/poisoned")
        # containment: the poison costs exactly the poisoned lights
        assert len(out[0]) + len(out[1]) == len(city)

        out_shard = identify_many(city, 5400.0, backend="shard", max_workers=1)
        _assert_parity(ref, out_shard, "shard/poisoned")
        assert len(out_shard[0]) + len(out_shard[1]) == len(city)

    @pytest.mark.slow
    def test_poisoned_city_process_pool(self, partitions):
        city, _bad_key, _dead_key = _poisoned_city(partitions)
        ref = identify_many(city, 5400.0, serial=True)
        out = identify_many(city, 5400.0, backend="process", max_workers=2)
        _assert_parity(ref, out, "process/poisoned")

    @pytest.mark.slow
    def test_poisoned_city_shard_pool(self, partitions):
        city, _bad_key, _dead_key = _poisoned_city(partitions)
        ref = identify_many(city, 5400.0, serial=True)
        out = identify_many(city, 5400.0, backend="shard", max_workers=2)
        _assert_parity(ref, out, "shard@2w/poisoned")


class TestStoreReuse:
    def test_store_reused_across_time_spots(self, partitions):
        """One store across spots: cached grids must not change results."""
        store = PartitionStore.from_partitions(partitions)
        times = (4500.0, 5400.0, 5400.0)  # repeated spot hits the cache
        for at in times:
            ref = identify_many(partitions, at, serial=True)
            out = identify_many(store, at, backend="batched")
            _assert_parity(ref, out, f"store reuse at t={at}")
        assert len(store.cache) > 0, "repeated spots should populate the cache"

    def test_store_roundtrip_partitions(self, partitions):
        store = PartitionStore.from_partitions(partitions)
        assert sorted(store) == sorted(partitions)
        assert store.n_records == sum(len(p.trace) for p in partitions.values())
        for key, p in partitions.items():
            q = store.partition(key)
            np.testing.assert_array_equal(q.trace.t, p.trace.t)
            np.testing.assert_array_equal(q.trace.speed_kmh, p.trace.speed_kmh)
            np.testing.assert_array_equal(
                q.dist_to_stopline_m, p.dist_to_stopline_m
            )

    def test_irregular_partition_quarantined(self, partitions):
        city, bad_key, _ = _poisoned_city(partitions)
        store = PartitionStore.from_partitions(city)
        assert not store.is_regular(bad_key)
        assert store.is_regular(sorted(partitions)[1])
        # the corrupt object comes back as-is, not silently re-packed
        assert store.partition(bad_key) is city[bad_key]
        # and its neighbours' rows are uncorrupted
        good = sorted(partitions)[1]
        np.testing.assert_array_equal(
            store.partition(good).trace.t, city[good].trace.t
        )

    def test_store_pickles_for_process_backend(self, partitions):
        import pickle

        store = PartitionStore.from_partitions(partitions)
        clone = pickle.loads(pickle.dumps(store))
        assert sorted(clone) == sorted(store)
        key = sorted(store)[0]
        np.testing.assert_array_equal(
            clone.partition(key).trace.t, store.partition(key).trace.t
        )


@pytest.fixture(scope="module")
def adaptive_city():
    """Demand-responsive synthetic city (gap controllers, alpha=0.6) —
    the scenario the frontier eval sweeps, pinned here at one point."""
    from repro.scenario import adaptive_synthetic_lights, synthetic_partitions

    lights = adaptive_synthetic_lights(3, alpha=0.6, kind="gap", seed=5)
    return synthetic_partitions(lights, 0.0, 5400.0, seed=5)


class TestAdaptiveTraceParity:
    """Backends must stay bit-for-bit identical on adaptive traces: the
    kernels see ordinary columns, so demand-responsive data is no excuse
    for divergence."""

    def test_batched_matches_serial_bitwise(self, adaptive_city):
        ref = identify_many(adaptive_city, 5400.0, serial=True)
        out = identify_many(adaptive_city, 5400.0, backend="batched")
        assert len(ref[0]) > 0, "adaptive city must identify some lights"
        _assert_parity(ref, out, "batched/adaptive")

    def test_shard_matches_serial_bitwise(self, adaptive_city):
        ref = identify_many(adaptive_city, 5400.0, serial=True)
        out = identify_many(adaptive_city, 5400.0, backend="shard", max_workers=1)
        _assert_parity(ref, out, "shard/adaptive")

    @pytest.mark.slow
    def test_process_and_shard_pools_match_serial(self, adaptive_city):
        ref = identify_many(adaptive_city, 5400.0, serial=True)
        out_p = identify_many(adaptive_city, 5400.0, backend="process", max_workers=2)
        _assert_parity(ref, out_p, "process/adaptive")
        out_s = identify_many(adaptive_city, 5400.0, backend="shard", max_workers=2)
        _assert_parity(ref, out_s, "shard@2w/adaptive")
