"""Lattice-law property tests for :mod:`repro.analysis.numeric`.

The REP017 fixpoint terminates because (a) ``join`` is a least upper
bound on a finite-height lattice and (b) the transfer functions are
monotone, so summaries can only climb a bounded number of times.  These
tests pin both halves: the algebraic laws over an exhaustive pool of
scalar and structured values, and termination on adversarial
mutually-recursive trees driven through the real ``build_program``.
"""

from __future__ import annotations

import ast
import itertools

import pytest

from repro.analysis.callgraph import build_callgraph
from repro.analysis.effects import build_program
from repro.analysis.numeric import (
    AMBIGUOUS,
    EXACT,
    LEVELS,
    SUB,
    UNKNOWN,
    DictVal,
    ListVal,
    TupleVal,
    _sig,
    build_numeric,
    clone,
    dtype_level,
    join,
    leq,
    worst,
)

SCALARS = (None,) + LEVELS


def _value_pool():
    """Scalars plus one structured value of each shape at each level."""
    pool = list(SCALARS)
    for lvl in (None, EXACT, SUB, UNKNOWN):
        pool.append(TupleVal([lvl, EXACT]))
        pool.append(ListVal(lvl))
        pool.append(DictVal({"t": lvl, "v": EXACT}, None))
    pool.append(TupleVal([TupleVal([SUB, None]), ListVal(EXACT)]))
    pool.append(DictVal({}, UNKNOWN))
    return pool


POOL = _value_pool()


class TestJoinLaws:
    @pytest.mark.parametrize("a", POOL, ids=str)
    def test_idempotent(self, a):
        assert _sig(join(clone(a), clone(a))) == _sig(a)

    def test_commutative(self):
        for a, b in itertools.product(POOL, repeat=2):
            assert _sig(join(clone(a), clone(b))) == _sig(join(clone(b), clone(a)))

    def test_associative(self):
        # scalars exhaustively; structured values on a reduced pool to
        # keep the cube tractable
        small = list(SCALARS) + [
            TupleVal([SUB, EXACT]),
            ListVal(UNKNOWN),
            DictVal({"t": EXACT}, None),
        ]
        for a, b, c in itertools.product(small, repeat=3):
            lhs = join(join(clone(a), clone(b)), clone(c))
            rhs = join(clone(a), join(clone(b), clone(c)))
            assert _sig(lhs) == _sig(rhs)

    def test_none_is_bottom(self):
        for a in POOL:
            assert _sig(join(None, clone(a))) == _sig(a)
            assert _sig(join(clone(a), None)) == _sig(a)

    def test_join_is_upper_bound(self):
        for a, b in itertools.product(POOL, repeat=2):
            j = join(clone(a), clone(b))
            assert leq(a, j)
            assert leq(b, j)

    def test_join_monotone(self):
        """a ⊑ b  ⇒  join(a, c) ⊑ join(b, c) for every c."""
        for a, b in itertools.product(POOL, repeat=2):
            if not leq(a, b):
                continue
            for c in POOL:
                assert leq(join(clone(a), clone(c)), join(clone(b), clone(c)))

    def test_leq_is_a_partial_order_on_scalars(self):
        for a, b in itertools.product(SCALARS, repeat=2):
            if leq(a, b) and leq(b, a):
                assert _sig(a) == _sig(b)
        for a, b, c in itertools.product(SCALARS, repeat=3):
            if leq(a, b) and leq(b, c):
                assert leq(a, c)

    def test_worst_bounds_every_component(self):
        v = TupleVal([EXACT, DictVal({"x": SUB}, None), ListVal(AMBIGUOUS)])
        assert worst(v) == SUB
        assert worst(None) is None
        assert worst(ListVal(None)) is None

    def test_clone_is_deep(self):
        v = DictVal({"t": TupleVal([EXACT, SUB])}, None)
        c = clone(v)
        assert _sig(c) == _sig(v)
        c.entries["t"].elements[0] = UNKNOWN
        assert worst(v.entries["t"]) == SUB  # original untouched


class TestDtypeLevel:
    @pytest.mark.parametrize(
        "expr, expected",
        [
            ("np.float64", EXACT),
            ("np.float32", SUB),
            ("np.float16", SUB),
            ("np.int64", EXACT),
            ("float", AMBIGUOUS),
            ("int", EXACT),
            ("'float64'", EXACT),
            ("'f8'", EXACT),
            ("'<f8'", EXACT),
            ("'f4'", SUB),
            ("'f'", SUB),
            ("'float'", AMBIGUOUS),
            ("'complex64'", UNKNOWN),  # unmodeled spelling stays unproven
            ("some.weird.thing", UNKNOWN),
        ],
    )
    def test_classification(self, expr, expected):
        node = ast.parse(expr, mode="eval").body
        assert dtype_level(node) == expected


def _graph(files):
    return build_callgraph([(path, src) for path, src in files])


class TestTransferMonotone:
    """Passing a worse argument can only raise what the callee returns."""

    TEMPLATE = (
        "import numpy as np\n\n"
        "def produce(x) -> np.ndarray:\n"
        "    return np.asarray(x, dtype={dtype})\n\n"
        "def relay(x) -> np.ndarray:\n"
        "    y = produce(x)\n"
        "    return y * 2.0\n"
    )

    def _relay_level(self, dtype: str):
        src = self.TEMPLATE.format(dtype=dtype)
        analysis = build_numeric(_graph([("src/repro/eval/driver.py", src)]))
        return worst(analysis.summaries["repro.eval.driver.relay"].returns)

    def test_worse_input_never_lowers_output(self):
        lvls = [self._relay_level(d) for d in ("np.float64", "float", "np.float32")]
        assert lvls == sorted(lvls)
        assert lvls[0] == EXACT and lvls[-1] == SUB


class TestFixpointTermination:
    def test_mutual_recursion_converges(self):
        src = (
            "import numpy as np\n\n"
            "def ping(x) -> np.ndarray:\n"
            "    if x.size > 1:\n"
            "        return pong(x[1:])\n"
            "    return np.asarray(x, dtype=np.float32)\n\n"
            "def pong(x) -> np.ndarray:\n"
            "    if x.size > 1:\n"
            "        return ping(x[1:])\n"
            "    return np.asarray(x, dtype=np.float64)\n"
        )
        analysis = build_numeric(_graph([("src/repro/eval/driver.py", src)]))
        ping = analysis.summaries["repro.eval.driver.ping"]
        pong = analysis.summaries["repro.eval.driver.pong"]
        # both see both terminal dtypes through the cycle: join is SUB
        assert worst(ping.returns) == SUB
        assert worst(pong.returns) == SUB

    def test_self_recursion_through_containers_converges(self):
        src = (
            "import numpy as np\n\n"
            "def spin(state) -> np.ndarray:\n"
            "    nxt = dict(t=state['t'], extra=(state['t'], state['t']))\n"
            "    if state['t'].size:\n"
            "        return spin(nxt)\n"
            "    return np.asarray(state['t'], dtype=np.float64)\n"
        )
        analysis = build_numeric(_graph([("src/repro/eval/driver.py", src)]))
        assert "repro.eval.driver.spin" in analysis.summaries

    def test_adversarial_tree_through_build_program(self):
        """Full ``build_program`` (effects + numeric) on a cyclic tree."""
        files = [
            (
                "src/repro/eval/a.py",
                "import numpy as np\n"
                "from repro.eval.b import beta\n\n"
                "def alpha(x) -> np.ndarray:\n"
                "    return beta(np.asarray(x, dtype=np.float32))\n",
            ),
            (
                "src/repro/eval/b.py",
                "import numpy as np\n"
                "from repro.eval.a import alpha\n\n"
                "def beta(x) -> np.ndarray:\n"
                "    if x.size > 2:\n"
                "        return alpha(x[1:])\n"
                "    return np.asarray(x, dtype=np.float64)\n",
            ),
        ]
        program = build_program(files)
        beta = program.numeric.summaries["repro.eval.b.beta"]
        assert worst(beta.params["x"]) == SUB
        # every path bottoms out in the float64 blessing, and the
        # two-phase fixpoint resolves the cycle precisely instead of
        # freezing the pending-callee transient at UNKNOWN
        assert worst(beta.returns) == EXACT
