"""Unit + property tests for the Table I wire format (repro.trace.io)."""

import io

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.trace.io import (
    BASE_DATE,
    format_record,
    parse_record,
    read_trace,
    seconds_to_timestamp,
    timestamp_to_seconds,
    write_trace,
)
from repro.trace.records import TaxiRecord, TraceArrays


def make_record(**kw):
    base = dict(
        plate="粤B12345",
        longitude=114.123456,
        latitude=22.547891,
        time_s=3723.0,
        device_id=700123,
        speed_kmh=42.5,
        heading_deg=187.3,
        gps_ok=True,
        overspeed=False,
        sim_card="139000012345",
        passenger=True,
        color="red",
    )
    base.update(kw)
    return TaxiRecord(**base)


class TestTimestamps:
    def test_render(self):
        assert seconds_to_timestamp(0.0) == "2014-12-05 00:00:00"
        assert seconds_to_timestamp(3723.0) == "2014-12-05 01:02:03"

    def test_roundtrip(self):
        assert timestamp_to_seconds(seconds_to_timestamp(86_400.0 + 59.0)) == 86_459.0

    @given(t=st.integers(0, 10 * 86_400))
    def test_property_roundtrip(self, t):
        assert timestamp_to_seconds(seconds_to_timestamp(float(t))) == float(t)


class TestLineFormat:
    def test_field_count_and_order(self):
        line = format_record(make_record())
        parts = line.split(",")
        assert len(parts) == 12
        assert parts[0] == "粤B12345"
        assert parts[1] == "114123456"       # lon ×1e6
        assert parts[2] == "22547891"        # lat ×1e6
        assert parts[3] == "2014-12-05 01:02:03"
        assert parts[7] == "1" and parts[8] == "0" and parts[10] == "1"

    def test_parse_inverse(self):
        rec = make_record()
        back = parse_record(format_record(rec))
        assert back.plate == rec.plate
        assert back.longitude == pytest.approx(rec.longitude, abs=1e-6)
        assert back.latitude == pytest.approx(rec.latitude, abs=1e-6)
        assert back.time_s == rec.time_s
        assert back.passenger == rec.passenger
        assert back.gps_ok == rec.gps_ok

    def test_parse_rejects_wrong_field_count(self):
        with pytest.raises(ValueError):
            parse_record("a,b,c")

    @given(
        lon=st.floats(113.0, 115.0),
        lat=st.floats(22.0, 23.0),
        t=st.integers(0, 86_400),
        speed=st.floats(0, 120),
        passenger=st.booleans(),
        gps=st.booleans(),
    )
    @settings(max_examples=50)
    def test_property_roundtrip(self, lon, lat, t, speed, passenger, gps):
        rec = make_record(
            longitude=lon, latitude=lat, time_s=float(t),
            speed_kmh=speed, passenger=passenger, gps_ok=gps,
        )
        back = parse_record(format_record(rec))
        assert back.longitude == pytest.approx(lon, abs=1e-6)
        assert back.latitude == pytest.approx(lat, abs=1e-6)
        assert back.time_s == float(t)
        assert back.passenger == passenger and back.gps_ok == gps


class TestFileRoundtrip:
    def test_write_read(self):
        tr = TraceArrays(
            taxi_id=[11, 12, 13],
            t=[10.0, 20.0, 30.0],
            lon=[114.05, 114.06, 114.07],
            lat=[22.54, 22.55, 22.56],
            speed_kmh=[0.0, 33.3, 60.0],
            passenger=[True, False, True],
        )
        buf = io.StringIO()
        n = write_trace(tr, buf)
        assert n == 3
        buf.seek(0)
        back = read_trace(buf)
        assert len(back) == 3
        np.testing.assert_array_equal(back.taxi_id, tr.taxi_id)
        np.testing.assert_allclose(back.lon, tr.lon, atol=1e-6)
        np.testing.assert_array_equal(back.passenger, tr.passenger)

    def test_read_skips_blank_lines(self):
        buf = io.StringIO(format_record(make_record()) + "\n\n\n")
        assert len(read_trace(buf)) == 1

    def test_read_reports_line_number(self):
        buf = io.StringIO(format_record(make_record()) + "\ngarbage line\n")
        with pytest.raises(ValueError, match="line 2"):
            read_trace(buf)

    def test_write_accepts_record_iterable(self):
        buf = io.StringIO()
        assert write_trace([make_record(), make_record()], buf) == 2
