"""Unit tests for signal-change identification (§VI.C)."""

import numpy as np
import pytest

from repro.core.changepoint import (
    circular_moving_average,
    find_signal_change,
    stop_end_density,
)


def speed_profile(cycle=98, red=39, r2g_at=39, lo=1.0, hi=9.0):
    """Idealized superposed profile: slow during red, fast in green."""
    idx = np.arange(cycle)
    g2r = (r2g_at - red) % cycle
    in_red = ((idx - g2r) % cycle) < red
    return np.where(in_red, lo, hi).astype(float)


class TestCircularMovingAverage:
    def test_window_one_is_identity(self):
        p = np.arange(10.0)
        np.testing.assert_allclose(circular_moving_average(p, 1), p)

    def test_exact_wraparound(self):
        p = np.array([1.0, 2.0, 3.0, 4.0])
        out = circular_moving_average(p, 2)
        np.testing.assert_allclose(out, [1.5, 2.5, 3.5, 2.5])

    def test_full_window_is_mean(self):
        p = np.array([1.0, 5.0, 9.0])
        out = circular_moving_average(p, 3)
        np.testing.assert_allclose(out, np.full(3, 5.0))

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            circular_moving_average(np.arange(5.0), 0)
        with pytest.raises(ValueError):
            circular_moving_average(np.arange(5.0), 6)


class TestStopEndDensity:
    def test_peak_at_cluster(self):
        ends = np.full(20, 40.0) + np.random.default_rng(0).normal(0, 1.5, 20)
        dens = stop_end_density(ends, 98.0)
        assert abs(int(np.argmax(dens)) - 40) <= 2

    def test_wraps_circularly(self):
        ends = np.array([1.0, 97.0])  # cluster straddling zero
        dens = stop_end_density(ends, 98.0, bandwidth_s=3.0)
        assert dens[0] > dens[49]

    def test_empty(self):
        assert stop_end_density(np.array([]), 98.0).sum() == 0


class TestFindSignalChange:
    def test_ideal_profile(self):
        prof = speed_profile(cycle=98, red=39, r2g_at=39)
        ch = find_signal_change(prof, 39.0)
        assert ch.red_to_green_s == pytest.approx(39.0, abs=2.0)
        assert ch.green_to_red_s == pytest.approx(0.0, abs=2.0)

    def test_shifted_phase(self):
        prof = speed_profile(cycle=98, red=39, r2g_at=70)
        ch = find_signal_change(prof, 39.0)
        assert ch.red_to_green_s == pytest.approx(70.0, abs=2.0)

    def test_relationship_between_changes(self):
        prof = speed_profile(cycle=100, red=40, r2g_at=60)
        ch = find_signal_change(prof, 40.0)
        assert (ch.red_to_green_s - ch.green_to_red_s) % 100 == pytest.approx(40.0, abs=1e-6)

    def test_fusion_overrides_noisy_profile(self, rng):
        # profile distorted so the window-min lands late; stop ends fix it
        prof = speed_profile(cycle=98, red=39, r2g_at=39)
        prof += rng.normal(0, 2.0, prof.size)
        ends = np.mod(39.0 + rng.normal(0, 2.0, 50), 98.0)
        fused = find_signal_change(prof, 39.0, stop_ends_in_cycle=ends, fusion_weight=2.0)
        assert fused.red_to_green_s == pytest.approx(39.0, abs=4.0)

    def test_zero_fusion_is_paper_literal(self, rng):
        prof = speed_profile()
        ends = np.full(30, 80.0)  # deliberately misleading
        a = find_signal_change(prof, 39.0, stop_ends_in_cycle=ends, fusion_weight=0.0)
        b = find_signal_change(prof, 39.0)
        assert a.red_to_green_s == b.red_to_green_s

    def test_paper_example_fig11(self, rng):
        """Cycle 98, red 39, green 59 — the Fig. 11 configuration; the
        detector must localize the change within the paper's ~3 s."""
        cycle, red = 98, 39
        t = np.sort(rng.uniform(0, 1800, 500))
        v = np.where((t % cycle) < red, 1.0, 9.0) + rng.normal(0, 1.0, 500)
        from repro.core.superposition import cycle_profile
        prof = cycle_profile(t, v, float(cycle))
        ch = find_signal_change(prof, float(red))
        assert ch.red_to_green_s == pytest.approx(red, abs=4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            find_signal_change(np.arange(10.0), 0.0)
        with pytest.raises(ValueError):
            find_signal_change(np.arange(10.0), 5.0, fusion_weight=-1.0)
