"""The multi-tenant serving layer (``repro.serve``) — deterministic suite.

Every test drives the full asyncio protocol on a **virtual clock**
(fixed tick per reading, no wall-clock sleeps) with ``offload=False``
(applies run inline on the loop), so task interleavings are decided by
the event loop's deterministic FIFO scheduling alone: the suite passes
bit-identically on every run.  Covered here: backpressure (both
full-queue policies), the typed quota rejections, per-tenant writer
crash containment, graceful shutdown with drain-on-close, freshness
waits, ``ServiceStats`` serialization and its ``RunReport`` v1-schema
guard, and end-to-end determinism.  The snapshot-isolation property
oracle lives in ``tests/test_serve_isolation.py``.
"""

import asyncio
import json

import pytest

from repro.obs import RunReport, ServiceStats
from repro.scenario import synthetic_lights, synthetic_partitions
from repro.serve import (
    DuplicateTenant,
    EvaluateOverload,
    IngestQueueFull,
    LightQuotaExceeded,
    LoadSpec,
    Snapshot,
    StreamService,
    Tenant,
    TenantClosed,
    TenantCrashed,
    TenantQuota,
    UnknownTenant,
)
from repro.stream import StreamSession, split_by_time

HORIZON = 1200.0


class VirtualClock:
    """Monotonic fake clock: each reading advances a fixed tick.

    Strictly increasing (so every latency sample is positive) and a
    pure function of the call count, which is what makes the whole
    suite's timing telemetry reproducible bit-for-bit.
    """

    def __init__(self, tick: float = 1e-3) -> None:
        self.now = 0.0
        self.tick = tick

    def __call__(self) -> float:
        self.now += self.tick
        return self.now


@pytest.fixture(scope="module")
def serve_city():
    """One tiny synthetic intersection (2 lights), module-shared, read-only."""
    lights = synthetic_lights(1, seed=3)
    return synthetic_partitions(lights, 0.0, HORIZON, seed=4)


@pytest.fixture(scope="module")
def serve_chunks(serve_city):
    """The tiny city split into three equal time slices."""
    return split_by_time(
        serve_city, [0.0, 400.0, 800.0, HORIZON + 1e-9]
    )


def _service(**kwargs) -> StreamService:
    """A service in the deterministic posture: virtual clock, inline applies."""
    return StreamService(clock=VirtualClock(), offload=False, **kwargs)


def _tenant(**kwargs) -> Tenant:
    """A bare unstarted tenant (lets tests freeze the writer)."""
    return Tenant(
        kwargs.pop("name", "solo"),
        session=StreamSession(monitor=False),
        clock=kwargs.pop("clock", VirtualClock()),
        **kwargs,
    )


def _poison(serve_city):
    """A chunk whose application blows up inside the store append."""
    key = sorted(serve_city)[0]
    return {key: None}


class TestLifecycle:
    def test_add_tenant_requires_running_loop(self):
        with pytest.raises(RuntimeError):
            _service().add_tenant("x")

    def test_duplicate_tenant_rejected(self):
        async def main():
            async with _service() as service:
                service.add_tenant("a")
                with pytest.raises(DuplicateTenant):
                    service.add_tenant("a")

        asyncio.run(main())

    def test_unknown_tenant_rejected(self):
        async def main():
            async with _service() as service:
                with pytest.raises(UnknownTenant):
                    await service.evaluate("ghost")

        asyncio.run(main())

    def test_submit_evaluate_roundtrip(self, serve_chunks):
        async def main():
            async with _service() as service:
                service.add_tenant("a")
                await service.submit("a", serve_chunks[0])
                snap = await service.evaluate("a", min_version=1)
                assert snap.version == 1
                assert snap.tenant == "a"
                assert snap.n_records == sum(
                    len(p.trace) for p in serve_chunks[0].values()
                )
                assert snap.at_time is not None
                assert snap.integrity_errors() == []
                return snap

        snap = asyncio.run(main())
        # published snapshots are immutable: the maps reject writes
        some_key = sorted(snap.eval_times)[0]
        with pytest.raises(TypeError):
            snap.estimates[some_key] = None  # type: ignore[index]

    def test_initial_snapshot_is_version_zero(self):
        snap = Snapshot.initial("a")
        assert snap.version == 0
        assert snap.at_time is None
        assert not snap.estimates and not snap.failures
        assert snap.integrity_errors() == []

    def test_close_flushes_queued_chunks(self, serve_chunks):
        async def main():
            async with _service() as service:
                tenant = service.add_tenant("a")
                for chunk in serve_chunks:
                    await service.submit("a", chunk)
            # __aexit__ closed the service: everything queued was applied
            assert tenant.closed
            assert tenant.snapshot.version == len(serve_chunks)
            assert tenant.stats().n_dropped_chunks == 0
            # the final snapshot stays readable after close ...
            snap = await tenant.evaluate()
            assert snap.version == len(serve_chunks)
            # ... but unreachable freshness is a typed refusal, not a hang
            with pytest.raises(TenantClosed):
                await tenant.evaluate(min_version=len(serve_chunks) + 1)
            with pytest.raises(TenantClosed):
                await tenant.submit(serve_chunks[0])

        asyncio.run(main())

    def test_evaluate_min_version_waits_for_writer(self, serve_chunks):
        async def main():
            async with _service() as service:
                service.add_tenant("a")
                waiter = asyncio.create_task(
                    service.evaluate("a", min_version=2)
                )
                await asyncio.sleep(0)  # let the reader park on the event
                assert not waiter.done()
                await service.submit("a", serve_chunks[0])
                await service.submit("a", serve_chunks[1])
                snap = await waiter
                assert snap.version >= 2

        asyncio.run(main())

    def test_evaluate_min_at_time_waits_for_writer(self, serve_chunks):
        async def main():
            async with _service() as service:
                service.add_tenant("a")
                waiter = asyncio.create_task(
                    service.evaluate("a", min_at_time=500.0)
                )
                await asyncio.sleep(0)
                assert not waiter.done()
                await service.submit("a", serve_chunks[0])  # t < 500
                await service.submit("a", serve_chunks[1])  # t >= 500
                snap = await waiter
                assert snap.at_time is not None and snap.at_time >= 500.0

        asyncio.run(main())


class TestBackpressure:
    def test_wait_policy_suspends_producer_until_drain(self, serve_chunks):
        async def main():
            tenant = _tenant(quota=TenantQuota(max_queue_depth=1))
            await tenant.submit(serve_chunks[0])  # fills the only slot
            blocked = asyncio.create_task(tenant.submit(serve_chunks[1]))
            for _ in range(3):
                await asyncio.sleep(0)
            assert not blocked.done(), "full queue must suspend the producer"
            tenant.start()  # the writer drains a slot; the producer resumes
            await blocked
            await tenant.close()
            assert tenant.snapshot.version == 2

        asyncio.run(main())

    def test_reject_policy_raises_typed_queue_full(self, serve_chunks):
        async def main():
            tenant = _tenant(
                quota=TenantQuota(max_queue_depth=1, on_full="reject")
            )
            await tenant.submit(serve_chunks[0])
            with pytest.raises(IngestQueueFull) as err:
                await tenant.submit(serve_chunks[1])
            assert err.value.tenant == "solo"
            assert err.value.limit == 1
            tenant.start()
            await tenant.close()
            stats = tenant.stats()
            assert stats.n_rejected_ingest == 1
            assert stats.n_chunks == 1  # the rejected chunk never landed

        asyncio.run(main())

    def test_high_water_is_bounded_by_depth(self, serve_chunks):
        async def main():
            tenant = _tenant(quota=TenantQuota(max_queue_depth=2))
            await tenant.submit(serve_chunks[0])
            await tenant.submit(serve_chunks[1])
            tenant.start()
            await tenant.close()
            assert tenant.stats().queue_high_water == 2

        asyncio.run(main())


class TestQuotas:
    def test_light_quota_rejects_before_queueing(self, serve_chunks):
        first = serve_chunks[0]
        keys = sorted(first)
        async def main():
            tenant = _tenant(quota=TenantQuota(max_lights=1))
            with pytest.raises(LightQuotaExceeded) as err:
                await tenant.submit(first)  # 2 lights > budget of 1
            assert err.value.limit == 1
            assert err.value.observed == len(keys)
            # the failed reservation rolled back: a within-budget chunk
            # is still accepted afterwards
            await tenant.submit({keys[0]: first[keys[0]]})
            tenant.start()
            await tenant.close()
            stats = tenant.stats()
            assert stats.n_rejected_ingest == 1
            assert stats.n_chunks == 1

        asyncio.run(main())

    def test_evaluate_overload_rejects_over_inflight_cap(self, serve_chunks):
        async def main():
            async with _service() as service:
                service.add_tenant(
                    "a", quota=TenantQuota(max_inflight_evaluates=1)
                )
                parked = asyncio.create_task(
                    service.evaluate("a", min_version=1)
                )
                await asyncio.sleep(0)  # reader holds the only slot
                await asyncio.sleep(0)
                with pytest.raises(EvaluateOverload) as err:
                    await service.evaluate("a")
                assert err.value.limit == 1
                await service.submit("a", serve_chunks[0])
                snap = await parked  # the parked reader completes normally
                assert snap.version == 1
                assert service.tenant("a").stats().n_rejected_evaluate == 1

        asyncio.run(main())

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_queue_depth": 0},
            {"max_lights": 0},
            {"max_inflight_evaluates": 0},
            {"on_full": "drop"},
        ],
    )
    def test_quota_validation(self, kwargs):
        with pytest.raises(ValueError):
            TenantQuota(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [{"n_tenants": 0}, {"n_chunks": 0}, {"evaluates_per_chunk": 0}],
    )
    def test_load_spec_validation(self, kwargs):
        with pytest.raises(ValueError):
            LoadSpec(**kwargs)


class TestCrashContainment:
    def test_poison_chunk_crashes_only_its_tenant(self, serve_city, serve_chunks):
        async def main():
            async with _service() as service:
                service.add_tenant("sick")
                service.add_tenant("healthy")
                await service.submit("sick", _poison(serve_city))
                await service.submit("healthy", serve_chunks[0])
                with pytest.raises(TenantCrashed) as err:
                    await service.evaluate("sick", min_version=1)
                assert err.value.failure.error_type == "AttributeError"
                with pytest.raises(TenantCrashed):
                    await service.submit("sick", serve_chunks[0])
                # the neighbour never noticed
                snap = await service.evaluate("healthy", min_version=1)
                assert snap.version == 1
                assert service.tenant("healthy").failure is None
            # service close survives the crashed tenant (record preserved)
            assert service.tenant("sick").failure is not None
            assert not service.tenant("sick").closed

        asyncio.run(main())

    def test_crash_drops_backlog_and_wakes_everyone(self, serve_city, serve_chunks):
        async def main():
            tenant = _tenant(quota=TenantQuota(max_queue_depth=1))
            await tenant.submit(_poison(serve_city))
            blocked = asyncio.create_task(tenant.submit(serve_chunks[0]))
            waiting = asyncio.create_task(tenant.evaluate(min_version=1))
            await asyncio.sleep(0)
            tenant.start()
            # the freshness-waiting reader is released with the typed error
            with pytest.raises(TenantCrashed):
                await waiting
            # the blocked producer either landed before the crash (its
            # chunk is then dropped from the backlog) or observed it
            try:
                await blocked
            except TenantCrashed:
                pass
            await tenant.close()
            assert tenant.failure is not None
            assert tenant.stats().n_dropped_chunks == 1
            assert tenant.snapshot.version == 0  # nothing was published

        asyncio.run(main())


class TestServiceStats:
    def _stats(self) -> ServiceStats:
        return ServiceStats(
            tenant="a", n_chunks=3, n_records=120, n_evaluates=9,
            n_rejected_ingest=1, n_rejected_evaluate=2, n_dropped_chunks=0,
            queue_high_water=2, ingest_wall_s=0.5,
            ingest_lag_p50_s=0.01, ingest_lag_p99_s=0.02,
            publish_p50_s=0.003, publish_p99_s=0.004,
            evaluate_p50_s=0.001, evaluate_p99_s=0.002,
        )

    def test_round_trip_is_exact(self):
        stats = self._stats()
        clone = ServiceStats.from_dict(json.loads(json.dumps(stats.to_dict())))
        assert clone == stats

    def test_report_round_trip(self):
        report = RunReport()
        report.record_service(self._stats())
        clone = RunReport.from_dict(json.loads(json.dumps(report.to_dict())))
        assert clone.services == report.services

    def test_report_without_services_keeps_v1_shape(self):
        assert "services" not in RunReport().to_dict()

    def test_service_folds_stats_into_report(self, serve_chunks):
        async def main():
            report = RunReport()
            async with _service(report=report) as service:
                service.add_tenant("a")
                await service.submit("a", serve_chunks[0])
                await service.evaluate("a", min_version=1)
            assert [s.tenant for s in report.services] == ["a"]
            stats = report.services[0]
            assert stats.n_chunks == 1
            assert stats.n_evaluates == 1
            assert stats.ingest_wall_s > 0.0

        asyncio.run(main())


class TestDeterminism:
    def test_two_runs_are_bit_identical(self, serve_chunks):
        async def run_once():
            async with _service() as service:
                service.add_tenant("a")
                service.add_tenant("b")
                coros = []
                for name in ("a", "b"):
                    async def produce(name=name):
                        for chunk in serve_chunks:
                            await service.submit(name, chunk)

                    async def consume(name=name):
                        for version in range(1, len(serve_chunks) + 1):
                            await service.evaluate(name, min_version=version)

                    coros.append(produce())
                    coros.append(consume())
                await asyncio.gather(*coros)
                snaps = {n: service.snapshot(n) for n in ("a", "b")}
                return snaps, [s.to_dict() for s in service.stats()]

        snaps1, stats1 = asyncio.run(run_once())
        snaps2, stats2 = asyncio.run(run_once())
        # virtual clock + inline applies: even the latency telemetry is
        # reproducible, not just the estimates
        assert stats1 == stats2
        for name in ("a", "b"):
            a, b = snaps1[name], snaps2[name]
            assert a.version == b.version
            assert sorted(a.estimates) == sorted(b.estimates)
            for key in a.estimates:
                ea, eb = a.estimates[key], b.estimates[key]
                assert (ea.cycle_s, ea.red_s, ea.green_s) == (
                    eb.cycle_s, eb.red_s, eb.green_s
                )
