"""Unit tests for repro.network.geometry."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.network.geometry import (
    LocalFrame,
    heading_difference,
    heading_of_vector,
    point_segment_distance,
    project_onto_segment,
    unit_vector_of_heading,
)


class TestLocalFrame:
    def test_origin_maps_to_zero(self):
        f = LocalFrame()
        x, y = f.to_local(f.origin_lon, f.origin_lat)
        assert x == pytest.approx(0.0) and y == pytest.approx(0.0)

    def test_lat_degree_is_about_111km(self):
        f = LocalFrame()
        assert f.meters_per_deg_lat == pytest.approx(111_195, rel=0.01)

    def test_lon_shrinks_with_latitude(self):
        f = LocalFrame()
        assert f.meters_per_deg_lon < f.meters_per_deg_lat

    @given(
        dlon=st.floats(-0.2, 0.2),
        dlat=st.floats(-0.2, 0.2),
    )
    def test_roundtrip(self, dlon, dlat):
        f = LocalFrame()
        lon, lat = f.origin_lon + dlon, f.origin_lat + dlat
        x, y = f.to_local(lon, lat)
        lon2, lat2 = f.to_geographic(x, y)
        assert lon2 == pytest.approx(lon, abs=1e-9)
        assert lat2 == pytest.approx(lat, abs=1e-9)

    def test_vectorized(self):
        f = LocalFrame()
        x, y = f.to_local(np.array([114.05, 114.06]), np.array([22.54, 22.55]))
        assert x.shape == (2,) and y.shape == (2,)
        assert x[1] > x[0] and y[1] > y[0]

    def test_rejects_bad_origin(self):
        with pytest.raises(ValueError):
            LocalFrame(origin_lon=200.0)


class TestHeadings:
    @pytest.mark.parametrize(
        "dx,dy,expected",
        [(0, 1, 0.0), (1, 0, 90.0), (0, -1, 180.0), (-1, 0, 270.0), (1, 1, 45.0)],
    )
    def test_cardinals(self, dx, dy, expected):
        assert heading_of_vector(dx, dy) == pytest.approx(expected)

    @given(h=st.floats(0, 359.99))
    def test_unit_vector_roundtrip(self, h):
        dx, dy = unit_vector_of_heading(h)
        assert heading_of_vector(dx, dy) == pytest.approx(h, abs=1e-6)

    def test_difference_wraps(self):
        assert heading_difference(350.0, 10.0) == pytest.approx(20.0)

    def test_difference_max_180(self):
        assert heading_difference(0.0, 180.0) == pytest.approx(180.0)

    @given(a=st.floats(0, 360), b=st.floats(0, 360))
    def test_difference_bounds_and_symmetry(self, a, b):
        d = float(heading_difference(a, b))
        assert 0.0 <= d <= 180.0
        assert d == pytest.approx(float(heading_difference(b, a)), abs=1e-9)


class TestProjection:
    def test_interior_projection(self):
        t, qx, qy = project_onto_segment(5.0, 3.0, 0.0, 0.0, 10.0, 0.0)
        assert t == pytest.approx(0.5)
        assert (qx, qy) == (pytest.approx(5.0), pytest.approx(0.0))

    def test_clamps_to_endpoints(self):
        t, qx, qy = project_onto_segment(-4.0, 2.0, 0.0, 0.0, 10.0, 0.0)
        assert t == 0.0 and qx == pytest.approx(0.0)

    def test_degenerate_segment(self):
        t, qx, qy = project_onto_segment(3.0, 4.0, 1.0, 1.0, 1.0, 1.0)
        assert qx == pytest.approx(1.0) and qy == pytest.approx(1.0)

    def test_distance_interior(self):
        d = point_segment_distance(5.0, 3.0, 0.0, 0.0, 10.0, 0.0)
        assert d == pytest.approx(3.0)

    def test_distance_beyond_end(self):
        d = point_segment_distance(13.0, 4.0, 0.0, 0.0, 10.0, 0.0)
        assert d == pytest.approx(5.0)

    def test_broadcast_points_by_segments(self):
        px = np.array([[0.0], [10.0]])  # 2 points
        py = np.array([[5.0], [5.0]])
        ax = np.array([[0.0, 100.0]])  # 2 segments
        ay = np.array([[0.0, 0.0]])
        bx = np.array([[10.0, 110.0]])
        by = np.array([[0.0, 0.0]])
        d = point_segment_distance(px, py, ax, ay, bx, by)
        assert d.shape == (2, 2)
        assert d[0, 0] == pytest.approx(5.0)
        assert d[0, 1] == pytest.approx(np.hypot(100.0, 5.0))
