"""Unit tests for repro.trace.fleet and repro.trace.gps."""

import numpy as np
import pytest

from repro.trace.fleet import DEFAULT_INTERVAL_MIXTURE, ReportingPolicy, sample_report_times
from repro.trace.gps import GPSErrorModel


class TestReportingPolicy:
    def test_default_mixture_sums_to_one(self):
        assert sum(p for _, p in DEFAULT_INTERVAL_MIXTURE) == pytest.approx(1.0)

    def test_mean_interval_near_paper(self):
        # the paper's 20.41 s mean is pair-weighted (∝ 1/interval); the
        # mixture's harmonic mean must land near it
        p = ReportingPolicy()
        inv = sum(prob / iv for iv, prob in p.interval_mixture)
        assert 1.0 / inv == pytest.approx(20.41, abs=4.0)
        assert 20.0 <= p.mean_interval_s <= 35.0

    def test_sample_interval_from_mixture(self, rng):
        p = ReportingPolicy()
        allowed = {iv for iv, _ in p.interval_mixture}
        for _ in range(50):
            assert p.sample_interval(rng) in allowed

    def test_rejects_bad_mixture(self):
        with pytest.raises(ValueError):
            ReportingPolicy(interval_mixture=((10.0, 0.5), (20.0, 0.4)))
        with pytest.raises(ValueError):
            ReportingPolicy(interval_mixture=((0.0, 1.0),))

    def test_rejects_bad_loss(self):
        with pytest.raises(ValueError):
            ReportingPolicy(packet_loss_prob=1.5)


class TestSampleReportTimes:
    def test_regular_grid_without_loss(self, rng):
        p = ReportingPolicy(packet_loss_prob=0.0, jitter_sd_s=0.0)
        times = sample_report_times(p, 30.0, 0.0, 600.0, rng)
        assert times.size in (20, 21)
        gaps = np.diff(times)
        np.testing.assert_allclose(gaps, 30.0)

    def test_loss_creates_multiples_of_interval(self, rng):
        p = ReportingPolicy(packet_loss_prob=0.4, jitter_sd_s=0.0)
        times = sample_report_times(p, 15.0, 0.0, 3000.0, rng)
        gaps = np.diff(times)
        ratio = gaps / 15.0
        np.testing.assert_allclose(ratio, np.round(ratio))
        assert (ratio > 1.5).any(), "packet loss should create long gaps"

    def test_bounds_respected(self, rng):
        p = ReportingPolicy()
        times = sample_report_times(p, 15.0, 100.0, 200.0, rng)
        if times.size:
            assert times.min() >= 100.0 and times.max() <= 200.0

    def test_empty_for_inverted_window(self, rng):
        p = ReportingPolicy()
        assert sample_report_times(p, 15.0, 100.0, 50.0, rng).size == 0

    def test_phase_varies_between_taxis(self, rng):
        p = ReportingPolicy(packet_loss_prob=0.0, jitter_sd_s=0.0)
        first = {float(sample_report_times(p, 30.0, 0.0, 100.0, rng)[0]) for _ in range(20)}
        assert len(first) > 5  # random phases


class TestGPSErrorModel:
    def test_noise_scale(self, rng):
        m = GPSErrorModel(sigma_m=5.0, outlier_prob=0.0, unavailable_prob=0.0)
        x = np.zeros(4000)
        xn, yn, ok = m.apply(x, x, rng)
        assert ok.all()
        assert xn.std() == pytest.approx(5.0, rel=0.1)

    def test_outliers_widen_tail(self, rng):
        clean = GPSErrorModel(sigma_m=5.0, outlier_prob=0.0, unavailable_prob=0.0)
        dirty = GPSErrorModel(sigma_m=5.0, outlier_prob=0.3, outlier_sigma_m=60.0,
                              unavailable_prob=0.0)
        x = np.zeros(4000)
        _, _, _ = clean.apply(x, x, rng)
        xd, _, _ = dirty.apply(x, x, rng)
        assert np.quantile(np.abs(xd), 0.99) > 40.0

    def test_unavailable_flagged(self, rng):
        m = GPSErrorModel(unavailable_prob=0.5)
        _, _, ok = m.apply(np.zeros(2000), np.zeros(2000), rng)
        assert 0.3 < ok.mean() < 0.7

    def test_validation(self):
        with pytest.raises(ValueError):
            GPSErrorModel(sigma_m=-1.0)
        with pytest.raises(ValueError):
            GPSErrorModel(outlier_prob=2.0)
