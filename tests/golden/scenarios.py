"""The seeded scenarios behind the golden fixtures, and their payloads.

Everything that defines a fixture lives here — scenario parameters,
pipeline invocation, and the JSON payload layout — so the regeneration
script and the regression test cannot drift apart.  Floats are stored
via ``json`` (shortest-repr), which round-trips IEEE-754 doubles
exactly: the comparison in ``tests/test_golden.py`` is bitwise.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import asdict, dataclass
from typing import Dict, Tuple, Union

FIXTURE_DIR = pathlib.Path(__file__).resolve().parent


@dataclass(frozen=True)
class GoldenScenario:
    """One seeded end-to-end run pinned by a committed fixture."""

    name: str
    cycle_s: float
    ns_red_s: float
    rate_per_hour: float
    scenario_seed: int
    sim_seed: int
    horizon_s: float
    at_time: float

    @property
    def path(self) -> pathlib.Path:
        return FIXTURE_DIR / f"golden_{self.name}.json"


#: Three small cities spanning short/medium/long cycles.  ``a`` matches
#: the session-scoped ``city_data`` fixture so the regression test can
#: reuse it instead of re-simulating.
GOLDEN_SCENARIOS: Tuple[GoldenScenario, ...] = (
    GoldenScenario("a", 98.0, 39.0, 400.0, 0, 7, 5400.0, 5400.0),
    GoldenScenario("b", 80.0, 30.0, 300.0, 1, 11, 4800.0, 4800.0),
    GoldenScenario("c", 120.0, 50.0, 350.0, 2, 23, 5400.0, 5000.0),
)


@dataclass(frozen=True)
class AdaptiveGoldenScenario:
    """One seeded demand-responsive run pinned by a committed fixture.

    Same contract as :class:`GoldenScenario`, but the lights run adaptive
    controllers (``repro.scenario.adaptive_synthetic_lights``): the
    fixture pins the identify pipeline on a drifting realized schedule,
    not just the fixed plans the paper assumes.
    """

    name: str
    n_intersections: int
    alpha: float
    kind: str
    seed: int
    horizon_s: float
    at_time: float

    @property
    def path(self) -> pathlib.Path:
        return FIXTURE_DIR / f"golden_{self.name}.json"


#: Matches the adaptive parity fixtures in the batch/stream suites, so
#: the pinned numbers cover the exact scenario those suites replay.
ADAPTIVE_GOLDEN_SCENARIOS: Tuple[AdaptiveGoldenScenario, ...] = (
    AdaptiveGoldenScenario("adaptive", 3, 0.6, "gap", 5, 5400.0, 5400.0),
)

AnyGoldenScenario = Union[GoldenScenario, AdaptiveGoldenScenario]

ALL_GOLDEN_SCENARIOS: Tuple["AnyGoldenScenario", ...] = (
    GOLDEN_SCENARIOS + ADAPTIVE_GOLDEN_SCENARIOS
)


def build_partitions(spec: AnyGoldenScenario):
    """Simulate the scenario and partition its trace (deterministic)."""
    if isinstance(spec, AdaptiveGoldenScenario):
        from repro.scenario import adaptive_synthetic_lights, synthetic_partitions

        lights = adaptive_synthetic_lights(
            spec.n_intersections, alpha=spec.alpha, kind=spec.kind, seed=spec.seed
        )
        return synthetic_partitions(lights, 0.0, spec.horizon_s, seed=spec.seed)

    from repro.eval import simulate_and_partition
    from repro.scenario import small_scenario

    city = small_scenario(
        cycle_s=spec.cycle_s,
        ns_red_s=spec.ns_red_s,
        rate_per_hour=spec.rate_per_hour,
        seed=spec.scenario_seed,
    )
    _trace, partitions = simulate_and_partition(
        city, 0.0, spec.horizon_s, seed=spec.sim_seed, serial=False
    )
    return partitions


def compute_payload(spec: AnyGoldenScenario, partitions=None) -> Dict:
    """The fixture payload for ``spec`` (batched backend, full pipeline)."""
    from repro.core import identify_many

    if partitions is None:
        partitions = build_partitions(spec)
    estimates, failures = identify_many(
        partitions, spec.at_time, backend="batched"
    )
    payload: Dict = {
        "scenario": asdict(spec),
        "estimates": {},
        "failures": {},
    }
    for (iid, approach) in sorted(estimates):
        est = estimates[(iid, approach)]
        payload["estimates"][f"{iid}:{approach}"] = {
            "cycle_s": est.cycle_s,
            "red_s": est.red_s,
            "green_s": est.green_s,
            "offset_s": est.schedule.offset_s,
            "red_to_green_s": est.change.red_to_green_s,
            "green_to_red_s": est.change.green_to_red_s,
        }
    for (iid, approach) in sorted(failures):
        fail = failures[(iid, approach)]
        payload["failures"][f"{iid}:{approach}"] = {
            "stage": fail.stage,
            "error_type": fail.error_type,
            "message": fail.message,
        }
    return payload


def load_fixture(spec: AnyGoldenScenario) -> Dict:
    with open(spec.path, encoding="utf-8") as fp:
        return json.load(fp)


def save_fixture(spec: AnyGoldenScenario, payload: Dict) -> None:
    with open(spec.path, "w", encoding="utf-8") as fp:
        json.dump(payload, fp, indent=2, sort_keys=True)
        fp.write("\n")
