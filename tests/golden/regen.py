"""Regenerate the committed golden fixtures.

Run deliberately, after an *intended* numeric change, and commit the
diff alongside the change that caused it::

    PYTHONPATH=src python -m tests.golden.regen

The regression test (``tests/test_golden.py``) never regenerates; it
only compares, so an accidental numeric drift cannot silently rewrite
its own oracle.
"""

from __future__ import annotations

from .scenarios import ALL_GOLDEN_SCENARIOS, compute_payload, save_fixture


def main() -> int:
    for spec in ALL_GOLDEN_SCENARIOS:
        payload = compute_payload(spec)
        save_fixture(spec, payload)
        print(
            f"wrote {spec.path} "
            f"({len(payload['estimates'])} estimates, "
            f"{len(payload['failures'])} failures)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
