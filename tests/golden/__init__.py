"""Golden-fixture regression harness.

Committed JSON snapshots of the full pipeline's estimates on seeded
scenarios, compared with **exact** float64 equality — any numeric drift
anywhere in the stack (matching, stops, spectra, refinement) fails the
suite instead of hiding under a tolerance.  Regenerate deliberately with
``python -m tests.golden.regen`` after an intended numeric change.
"""
