"""Unit tests for repro._util."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro._util import (
    as_rng,
    check_1d,
    check_in_range,
    check_nonnegative,
    check_positive,
    circular_diff,
    seed_sequence_for,
    wrap_mod,
)


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        assert as_rng(42).integers(1 << 30) == as_rng(42).integers(1 << 30)

    def test_generator_passthrough(self):
        g = np.random.default_rng(1)
        assert as_rng(g) is g

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(5)
        assert isinstance(as_rng(ss), np.random.Generator)


class TestSeedSequenceFor:
    def test_reproducible(self):
        a = as_rng(seed_sequence_for(9, 3)).integers(1 << 30)
        b = as_rng(seed_sequence_for(9, 3)).integers(1 << 30)
        assert a == b

    def test_distinct_keys_differ(self):
        a = as_rng(seed_sequence_for(9, 3)).integers(1 << 30)
        b = as_rng(seed_sequence_for(9, 4)).integers(1 << 30)
        assert a != b


class TestCheckers:
    def test_check_positive_accepts(self):
        assert check_positive("x", 2) == 2.0

    @pytest.mark.parametrize("bad", [0, -1, float("nan"), float("inf")])
    def test_check_positive_rejects(self, bad):
        with pytest.raises(ValueError):
            check_positive("x", bad)

    def test_check_nonnegative_accepts_zero(self):
        assert check_nonnegative("x", 0) == 0.0

    def test_check_nonnegative_rejects(self):
        with pytest.raises(ValueError):
            check_nonnegative("x", -0.1)

    def test_check_in_range_inclusive(self):
        assert check_in_range("x", 1.0, 1.0, 2.0) == 1.0

    def test_check_in_range_strict_rejects_boundary(self):
        with pytest.raises(ValueError):
            check_in_range("x", 1.0, 1.0, 2.0, inclusive=False)

    def test_check_1d_coerces(self):
        out = check_1d("x", [1, 2, 3])
        assert out.dtype == float and out.shape == (3,)

    def test_check_1d_rejects_2d(self):
        with pytest.raises(ValueError):
            check_1d("x", [[1, 2], [3, 4]])

    def test_check_1d_min_len(self):
        with pytest.raises(ValueError):
            check_1d("x", [1], min_len=2)


class TestWrapMod:
    def test_basic(self):
        assert wrap_mod(105, 98) == pytest.approx(7)

    def test_negative_values_wrap_positive(self):
        assert wrap_mod(-3, 98) == pytest.approx(95)

    def test_vectorized(self):
        out = wrap_mod(np.array([0.0, 98.0, 99.0]), 98.0)
        np.testing.assert_allclose(out, [0.0, 0.0, 1.0])

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            wrap_mod(1.0, 0.0)


class TestCircularDiff:
    def test_wraparound_small(self):
        # 1 s vs 97 s on a 98 s circle is a 2 s difference
        assert circular_diff(1.0, 97.0, 98.0) == pytest.approx(2.0)

    def test_signed(self):
        assert circular_diff(10.0, 15.0, 98.0) == pytest.approx(-5.0)

    @given(
        a=st.floats(-1000, 1000),
        b=st.floats(-1000, 1000),
        period=st.floats(1.0, 500.0),
    )
    def test_bounded_by_half_period(self, a, b, period):
        d = float(circular_diff(a, b, period))
        assert -period / 2 - 1e-6 <= d < period / 2 + 1e-6

    @given(
        a=st.floats(0, 1000),
        b=st.floats(0, 1000),
        k=st.integers(-5, 5),
        period=st.floats(1.0, 500.0),
    )
    def test_period_invariant(self, a, b, k, period):
        d1 = float(circular_diff(a, b, period))
        d2 = float(circular_diff(a + k * period, b, period))
        assert d1 == pytest.approx(d2, abs=1e-6)
