"""Unit tests for intersection-based enhancement (§V.B, Eq. 3)."""

import numpy as np
import pytest

from repro.core.cycle import identify_cycle_from_samples
from repro.core.enhancement import choose_primary, enhance_samples, mirror_speeds


class TestMirror:
    def test_reflection_about_mean(self):
        out = mirror_speeds(np.array([0.0, 10.0, 20.0]), mean_speed=10.0)
        np.testing.assert_allclose(out, [20.0, 10.0, 0.0])

    def test_clamped_at_zero(self):
        out = mirror_speeds(np.array([50.0]), mean_speed=10.0)
        assert out[0] == 0.0  # 2*10-50 = -30 -> clamp


class TestChoosePrimary:
    def test_denser_first(self):
        ta, va = np.arange(10.0), np.ones(10)
        tb, vb = np.arange(3.0), np.zeros(3)
        t1, v1, t2, v2 = choose_primary(tb, vb, ta, va)
        assert t1.size == 10 and t2.size == 3


class TestEnhanceSamples:
    def test_primary_wins_collisions(self):
        tp = np.array([10.0, 20.0])
        vp = np.array([5.0, 6.0])
        tq = np.array([10.4, 30.0])  # 10.4 collides with bucket 10
        vq = np.array([100.0, 0.0])
        t, v = enhance_samples(tp, vp, tq, vq)
        assert t.size == 3
        # the colliding perpendicular sample was discarded
        assert 100.0 not in np.round(2 * np.mean(np.concatenate([vp, vq])) - v, 6)
        assert set(np.round(t, 1)) == {10.0, 20.0, 30.0}

    def test_mirrored_values_enter_free_slots(self):
        tp = np.array([0.0])
        vp = np.array([10.0])
        tq = np.array([50.0])
        vq = np.array([2.0])
        t, v = enhance_samples(tp, vp, tq, vq)
        mean = (10.0 + 2.0) / 2
        assert v[t == 50.0][0] == pytest.approx(max(0.0, 2 * mean - 2.0))

    def test_sorted_output(self, rng):
        tp = np.sort(rng.uniform(0, 100, 20))
        tq = np.sort(rng.uniform(0, 100, 20))
        t, v = enhance_samples(tp, rng.uniform(0, 10, 20), tq, rng.uniform(0, 10, 20))
        assert np.all(np.diff(t) >= 0)

    def test_empty_perpendicular(self):
        t, v = enhance_samples(np.array([1.0]), np.array([2.0]), np.array([]), np.array([]))
        assert t.tolist() == [1.0] and v.tolist() == [2.0]

    def test_empty_primary_mirrors_everything(self):
        t, v = enhance_samples(np.array([]), np.array([]),
                               np.array([5.0]), np.array([3.0]))
        assert t.tolist() == [5.0]
        assert v[0] == pytest.approx(3.0)  # mirrored about its own mean

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            enhance_samples(np.array([1.0]), np.array([1.0, 2.0]),
                            np.array([]), np.array([]))


class TestEnhancementHelpsSparse:
    def test_cycle_recovery_improves(self, rng):
        """Fig. 7's claim: a direction too sparse on its own becomes
        identifiable once the perpendicular flow is mirrored in."""
        period, red_frac = 98.0, 0.4
        t0, t1 = 0.0, 1800.0

        def samples(n, phase_red):
            t = np.sort(rng.uniform(t0, t1, n))
            in_red = ((t % period) < red_frac * period) == phase_red
            v = np.where(in_red, 1.0, 9.0) + rng.normal(0, 0.8, n)
            return t, v

        # primary: very sparse; perpendicular: opposite phase, denser
        tp, vp = samples(25, True)
        tq, vq = samples(80, False)
        t, v = enhance_samples(tp, vp, tq, vq)
        assert t.size > tp.size
        est = identify_cycle_from_samples(t, v, t0, t1, enhanced=True)
        assert est.enhanced
        assert est.cycle_s == pytest.approx(period, abs=2.0)
