"""Unit tests for the process-pool fan-out utilities."""

import os

import numpy as np
import pytest

from repro.parallel.pool import default_workers, pmap, pmap_seeded


def square(x):
    return x * x


def draw(item, rng):
    return item, int(rng.integers(1_000_000))


class TestDefaultWorkers:
    def test_explicit(self):
        assert default_workers(3) == 3

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            default_workers(0)

    def test_capped(self):
        assert 1 <= default_workers() <= 8


class TestPmap:
    def test_order_preserved_serial(self):
        assert pmap(square, range(10), serial=True) == [x * x for x in range(10)]

    def test_order_preserved_parallel(self):
        out = pmap(square, range(50), max_workers=4)
        assert out == [x * x for x in range(50)]

    def test_empty(self):
        assert pmap(square, []) == []

    def test_single_item_stays_inline(self):
        assert pmap(square, [7]) == [49]

    def test_parallel_equals_serial(self):
        items = list(range(37))
        assert pmap(square, items, max_workers=3) == pmap(square, items, serial=True)


class TestPmapSeeded:
    def test_deterministic_across_worker_counts(self):
        items = list(range(20))
        a = pmap_seeded(draw, items, base_seed=5, serial=True)
        b = pmap_seeded(draw, items, base_seed=5, max_workers=4)
        c = pmap_seeded(draw, items, base_seed=5, max_workers=2)
        assert a == b == c

    def test_different_base_seed_differs(self):
        items = list(range(10))
        a = pmap_seeded(draw, items, base_seed=1, serial=True)
        b = pmap_seeded(draw, items, base_seed=2, serial=True)
        assert a != b

    def test_items_get_independent_streams(self):
        out = pmap_seeded(draw, [0] * 20, base_seed=9, serial=True)
        values = [v for _, v in out]
        assert len(set(values)) > 1

    def test_empty(self):
        assert pmap_seeded(draw, [], base_seed=0) == []
