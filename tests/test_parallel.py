"""Unit tests for the process-pool fan-out utilities."""

import os

import numpy as np
import pytest

from repro.parallel import pool
from repro.parallel.pool import (
    WorkerError,
    default_workers,
    get_common,
    pmap,
    pmap_seeded,
)

# Process pools dominate this module's runtime; the fast CI tier skips it.
pytestmark = pytest.mark.slow


def square(x):
    return x * x


def draw(item, rng):
    return item, int(rng.integers(1_000_000))


def fail_on_odd(x):
    if x % 2:
        raise ValueError(f"odd {x}")
    return x * 10


def fail_on_odd_seeded(x, rng):
    if x % 2:
        raise ValueError(f"odd {x}")
    return x * 10, int(rng.integers(1_000_000))


def report_common(x):
    return get_common()


def normalize(results):
    """Comparable view: WorkerErrors reduced to their stable fields."""
    return [
        (r.index, r.error_type, r.message) if isinstance(r, WorkerError) else r
        for r in results
    ]


class TestDefaultWorkers:
    def test_explicit(self):
        assert default_workers(3) == 3

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            default_workers(0)

    def test_capped(self):
        assert 1 <= default_workers() <= 8

    def test_respects_cpu_affinity(self, monkeypatch):
        # cgroup/affinity-limited runners expose fewer CPUs than
        # os.cpu_count(); the default must not oversubscribe them.
        if not hasattr(os, "sched_getaffinity"):
            pytest.skip("platform has no sched_getaffinity")
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1})
        assert default_workers() == 2


class TestPmap:
    def test_order_preserved_serial(self):
        assert pmap(square, range(10), serial=True) == [x * x for x in range(10)]

    def test_order_preserved_parallel(self):
        out = pmap(square, range(50), max_workers=4)
        assert out == [x * x for x in range(50)]

    def test_empty(self):
        assert pmap(square, []) == []

    def test_single_item_stays_inline(self):
        assert pmap(square, [7]) == [49]

    def test_parallel_equals_serial(self):
        items = list(range(37))
        assert pmap(square, items, max_workers=3) == pmap(square, items, serial=True)


class TestPmapOnError:
    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            pmap(square, [1], on_error="skip")

    def test_raise_is_the_default(self):
        with pytest.raises(ValueError):
            pmap(fail_on_odd, [1, 2], serial=True)

    def test_return_mode_contains_failures(self):
        out = pmap(fail_on_odd, range(6), serial=True, on_error="return")
        assert out[0] == 0 and out[2] == 20 and out[4] == 40
        for i in (1, 3, 5):
            assert isinstance(out[i], WorkerError)
            assert out[i].index == i
            assert out[i].error_type == "ValueError"
            assert f"odd {i}" in out[i].message
            assert "ValueError" in out[i].traceback

    def test_return_mode_parallel_survives_poisoned_chunk(self):
        # items sharing a chunk with a poisoned one still complete
        out = pmap(fail_on_odd, range(40), max_workers=3, on_error="return")
        assert len(out) == 40
        assert sum(isinstance(r, WorkerError) for r in out) == 20

    def test_serial_parallel_parity(self):
        items = list(range(23))
        a = pmap(fail_on_odd, items, serial=True, on_error="return")
        b = pmap(fail_on_odd, items, max_workers=3, on_error="return")
        assert normalize(a) == normalize(b)

    def test_seeded_parity_and_streams(self):
        items = list(range(17))
        a = pmap_seeded(fail_on_odd_seeded, items, base_seed=3, serial=True,
                        on_error="return")
        b = pmap_seeded(fail_on_odd_seeded, items, base_seed=3, max_workers=4,
                        on_error="return")
        assert normalize(a) == normalize(b)
        # even items carry real seeded draws, identical across modes
        assert a[2] == b[2] and isinstance(a[2], tuple)


class TestCommonSlotAcrossProcesses:
    """Pool-path counterparts of ``tests/test_pool_guards.py``."""

    def test_pool_common_roundtrip(self):
        out = pmap(report_common, range(6), max_workers=2, common={"k": 1})
        assert out == [{"k": 1}] * 6
        assert get_common() is None

    def test_workers_see_none_without_common(self):
        # With a fork start method, workers inherit the parent's globals;
        # the initializer must reset the slot even when no common rides
        # along, or a stale store from an earlier run stays visible.
        pool._set_common("stale-from-parent")
        try:
            out = pmap(report_common, range(8), max_workers=2)
        finally:
            pool._set_common(None)
        assert out == [None] * 8


class TestPmapSeeded:
    def test_deterministic_across_worker_counts(self):
        items = list(range(20))
        a = pmap_seeded(draw, items, base_seed=5, serial=True)
        b = pmap_seeded(draw, items, base_seed=5, max_workers=4)
        c = pmap_seeded(draw, items, base_seed=5, max_workers=2)
        assert a == b == c

    def test_different_base_seed_differs(self):
        items = list(range(10))
        a = pmap_seeded(draw, items, base_seed=1, serial=True)
        b = pmap_seeded(draw, items, base_seed=2, serial=True)
        assert a != b

    def test_items_get_independent_streams(self):
        out = pmap_seeded(draw, [0] * 20, base_seed=9, serial=True)
        values = [v for _, v in out]
        assert len(set(values)) > 1

    def test_empty(self):
        assert pmap_seeded(draw, [], base_seed=0) == []
