"""Async-discipline rules (REP012–REP016): fixtures and real-tree canaries.

Per-rule fire/clean fixtures run synthetic trees through
``lint_sources``; the canaries load the *real* ``src`` tree, break one
seam in ``repro/serve/tenant.py`` the way a refactor plausibly would
(drop the quota rollback, route the apply inline, reorder the
publish-event swap), and assert the matching rule fires at the broken
seam — proof the gate guards the shipped code, not just the fixtures.
Suppression comments in fixtures are built from ``ALLOW`` so this file
never contains a live suppression.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis.engine import iter_python_files, lint_sources
from repro.analysis.rules import SUPPRESSION_SCOPE

ALLOW = "# repro" + ": allow"

REPO_ROOT = Path(__file__).resolve().parents[1]

LIB = "src/repro/eval/driver.py"
SEAM = "src/repro/serve/tenant.py"
TENANT = str(REPO_ROOT / "src" / "repro" / "serve" / "tenant.py")


def _src(text: str) -> str:
    return textwrap.dedent(text).lstrip("\n")


def _rules_of(findings):
    return [f.rule for f in findings]


# ----------------------------------------------------------------------
# REP012 — no loop-blocking call reachable from an async def
# ----------------------------------------------------------------------

REP012_FIRE = _src(
    """
    import time

    def crunch(x):
        time.sleep(x)
        return x

    async def handler(x):
        return crunch(x)
    """
)

REP012_CLEAN = _src(
    """
    import asyncio
    import time

    def crunch(x):
        time.sleep(x)
        return x

    async def handler(x):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, crunch, x)
    """
)


class TestLoopBlocking:
    def test_sync_blocking_chain_fires(self):
        findings = lint_sources([(LIB, REP012_FIRE)])
        assert _rules_of(findings) == ["REP012"]
        assert "handler" in findings[0].message
        assert "crunch" in findings[0].message

    def test_offload_seam_is_clean(self):
        assert lint_sources([(LIB, REP012_CLEAN)]) == []

    def test_direct_blocking_call_fires(self):
        source = _src(
            """
            import time

            async def handler(x):
                time.sleep(x)
            """
        )
        findings = lint_sources([(LIB, source)])
        assert _rules_of(findings) == ["REP012"]

    def test_suppression_only_sanctioned_on_the_seam(self):
        assert SUPPRESSION_SCOPE["REP012"] == ("repro/serve/tenant.py",)
        fire = REP012_FIRE.replace(
            "return crunch(x)", f"return crunch(x)  {ALLOW}[REP012]"
        )
        findings = lint_sources([(LIB, fire)])
        assert _rules_of(findings) == ["REP012"]
        assert "only sanctioned" in findings[0].message

    def test_suppression_honored_on_the_seam(self):
        fire = REP012_FIRE.replace(
            "return crunch(x)", f"return crunch(x)  {ALLOW}[REP012]"
        )
        assert lint_sources([(SEAM, fire)]) == []


# ----------------------------------------------------------------------
# REP013 — single-writer discipline
# ----------------------------------------------------------------------

REP013_FIRE = _src(
    """
    import asyncio

    class Serv:
        def start(self):
            self._task = asyncio.get_running_loop().create_task(
                self._writer()
            )

        async def _writer(self):
            await asyncio.sleep(0)
            self._count = 1

        async def reader(self):
            await asyncio.sleep(0)
            self._bump()

        def _bump(self):
            self._count = 2
    """
)

REP013_CLEAN = REP013_FIRE.replace("self._bump()", "return self._count")


class TestSingleWriter:
    def test_reader_reaching_writer_owned_write_fires(self):
        findings = lint_sources([(LIB, REP013_FIRE)])
        assert _rules_of(findings) == ["REP013"]
        message = findings[0].message
        assert "reader" in message
        assert "_count" in message
        assert "_bump" in message  # the chain is named

    def test_read_only_reader_is_clean(self):
        assert lint_sources([(LIB, REP013_CLEAN)]) == []

    def test_direct_reader_write_fires_at_the_write(self):
        source = REP013_FIRE.replace("self._bump()", "self._count = 3")
        findings = lint_sources([(LIB, source)])
        assert _rules_of(findings) == ["REP013"]

    def test_without_a_writer_task_nothing_is_owned(self):
        source = REP013_FIRE.replace("create_task", "untracked_helper")
        findings = lint_sources([(LIB, source)])
        assert "REP013" not in _rules_of(findings)


# ----------------------------------------------------------------------
# REP014 — publish-once
# ----------------------------------------------------------------------

REP014_FIRE = _src(
    """
    class Serv:
        def publish(self, snap):
            self._snapshot = snap
            snap.plans.update({1: 2})
    """
)

REP014_CLEAN = _src(
    """
    class Serv:
        def publish(self, snap):
            merged = dict(snap.plans)
            merged.update({1: 2})
            self._snapshot = snap
    """
)


class TestPublishOnce:
    def test_mutation_after_publish_fires(self):
        findings = lint_sources([(LIB, REP014_FIRE)])
        assert _rules_of(findings) == ["REP014"]
        assert "snap" in findings[0].message

    def test_build_then_swap_is_clean(self):
        assert lint_sources([(LIB, REP014_CLEAN)]) == []

    def test_mutation_through_the_attribute_fires(self):
        source = _src(
            """
            class Serv:
                def patch(self):
                    self._snapshot.plans = {}
            """
        )
        findings = lint_sources([(LIB, source)])
        assert _rules_of(findings) == ["REP014"]

    def test_mutating_a_read_back_snapshot_fires(self):
        source = _src(
            """
            class Serv:
                def patch(self):
                    snap = self._snapshot
                    snap.plans.update({1: 2})
            """
        )
        findings = lint_sources([(LIB, source)])
        assert _rules_of(findings) == ["REP014"]

    def test_annotated_snapshot_param_is_frozen(self):
        source = _src(
            """
            class Snapshot:
                pass

            def patch(snap: Snapshot) -> None:
                snap.plans.update({1: 2})
            """
        )
        findings = lint_sources([(LIB, source)])
        assert _rules_of(findings) == ["REP014"]

    def test_construction_is_exempt(self):
        source = _src(
            """
            class Snapshot:
                def __init__(self):
                    self.plans = {}
            """
        )
        assert lint_sources([(LIB, source)]) == []


# ----------------------------------------------------------------------
# REP015 — quota reserve/rollback pairing
# ----------------------------------------------------------------------

REP015_FIRE = _src(
    """
    import asyncio

    class Quota:
        def __init__(self):
            self.max_items = 4

    class Serv:
        def __init__(self, quota: Quota):
            self.quota = quota
            self._used = 0
            self._q = asyncio.Queue()

        async def push(self, n):
            if self._used + n > self.quota.max_items:
                raise RuntimeError("over quota")
            self._used += n
            await self._q.put(n)
    """
)

REP015_CLEAN = REP015_FIRE.replace(
    """        self._used += n
        await self._q.put(n)""",
    """        self._used += n
        landed = False
        try:
            await self._q.put(n)
            landed = True
        finally:
            if not landed:
                self._used -= n""",
)


class TestQuotaRollback:
    def test_unprotected_reserve_across_await_fires(self):
        findings = lint_sources([(LIB, REP015_FIRE)])
        assert _rules_of(findings) == ["REP015"]
        message = findings[0].message
        assert "_used" in message
        assert "push" in message

    def test_try_finally_release_is_clean(self):
        assert lint_sources([(LIB, REP015_CLEAN)]) == []

    def test_release_in_handler_is_clean(self):
        source = REP015_FIRE.replace(
            """        self._used += n
        await self._q.put(n)""",
            """        self._used += n
        try:
            await self._q.put(n)
        except asyncio.CancelledError:
            self._used -= n
            raise""",
        )
        assert lint_sources([(LIB, source)]) == []

    def test_reserve_without_await_is_clean(self):
        source = REP015_FIRE.replace(
            "await self._q.put(n)", "self._q.put_nowait(n)"
        )
        assert lint_sources([(LIB, source)]) == []


# ----------------------------------------------------------------------
# REP016 — publish-event swap-and-set protocol
# ----------------------------------------------------------------------

REP016_CLEAN = _src(
    """
    import asyncio

    class Serv:
        def __init__(self):
            self._ev = asyncio.Event()

        def wake(self):
            old = self._ev
            self._ev = asyncio.Event()
            old.set()
    """
)

REP016_FIRE = REP016_CLEAN.replace(
    """        old = self._ev
        self._ev = asyncio.Event()
        old.set()""",
    """        old = self._ev
        old.set()
        self._ev = asyncio.Event()""",
)


class TestPublishEvent:
    def test_set_before_swap_fires(self):
        findings = lint_sources([(LIB, REP016_FIRE)])
        assert _rules_of(findings) == ["REP016"]
        assert "before" in findings[0].message

    def test_swap_then_set_is_clean(self):
        assert lint_sources([(LIB, REP016_CLEAN)]) == []

    def test_swap_without_capture_fires(self):
        source = REP016_CLEAN.replace(
            """        old = self._ev
        self._ev = asyncio.Event()
        old.set()""",
            """        self._ev = asyncio.Event()""",
        )
        findings = lint_sources([(LIB, source)])
        assert _rules_of(findings) == ["REP016"]
        assert "without capturing" in findings[0].message

    def test_in_place_set_fires(self):
        source = REP016_CLEAN.replace(
            "        old.set()",
            """        old.set()

    def poke(self):
        self._ev.set()""",
        )
        findings = lint_sources([(LIB, source)])
        assert _rules_of(findings) == ["REP016"]
        assert "fresh" in findings[0].message

    def test_writer_awaiting_its_own_event_fires(self):
        source = _src(
            """
            import asyncio

            class Serv:
                def __init__(self):
                    self._ev = asyncio.Event()

                def start(self):
                    self._task = asyncio.get_running_loop().create_task(
                        self._writer()
                    )

                def wake(self):
                    old = self._ev
                    self._ev = asyncio.Event()
                    old.set()

                async def _writer(self):
                    await self._ev.wait()
            """
        )
        findings = lint_sources([(LIB, source)])
        assert "REP016" in _rules_of(findings)
        assert any("deadlock" in f.message for f in findings)


# ----------------------------------------------------------------------
# Real-tree canaries: break the shipped seams, the gate must notice
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def real_tree():
    files = []
    for path in iter_python_files([str(REPO_ROOT / "src")]):
        with open(path, encoding="utf-8") as fp:
            files.append((path, fp.read()))
    return files


def _mutated(files, needle, replacement):
    tenant = dict(files)[TENANT]
    assert needle in tenant, "canary seam moved; update the mutation"
    mutated = tenant.replace(needle, replacement)
    return [(p, mutated if p == TENANT else s) for p, s in files]


class TestRealTreeCanaries:
    def test_clean_as_shipped(self, real_tree):
        assert lint_sources(real_tree) == []

    def test_dropping_the_quota_rollback_fires_rep015(self, real_tree):
        files = _mutated(
            real_tree,
            "self._known_lights -= new_lights  # the chunk never landed",
            "pass",
        )
        findings = lint_sources(files)
        assert "REP015" in _rules_of(findings)
        hit = next(f for f in findings if f.rule == "REP015")
        assert hit.path == TENANT
        assert "submit" in hit.message
        assert "_known_lights" in hit.message

    def test_routing_apply_inline_fires_rep013(self, real_tree):
        files = _mutated(
            real_tree,
            "await self._queue.put(item)",
            "self._apply(item)",
        )
        findings = lint_sources(files)
        rules = _rules_of(findings)
        assert "REP013" in rules
        hit = next(f for f in findings if f.rule == "REP013")
        assert hit.path == TENANT
        assert "submit" in hit.message
        assert "_apply" in hit.message  # the call chain is named
        # the same seam also drags kernel work onto the loop
        assert "REP012" in rules

    def test_reordering_the_wake_swap_fires_rep016(self, real_tree):
        files = _mutated(
            real_tree,
            """        event = self._publish_event
        self._publish_event = asyncio.Event()
        event.set()""",
            """        event = self._publish_event
        event.set()
        self._publish_event = asyncio.Event()""",
        )
        findings = lint_sources(files)
        assert "REP016" in _rules_of(findings)
        hit = next(f for f in findings if f.rule == "REP016")
        assert hit.path == TENANT
        assert "_wake" in hit.message
