"""Smoke tests: the shipped examples must actually run.

Only the fast examples execute here (the city-wide and corridor ones
take tens of seconds and are exercised by the benchmarks instead).
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, capsys):
    path = EXAMPLES / name
    assert path.exists(), f"missing example {name}"
    runpy.run_path(str(path), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart_runs(capsys):
    out = run_example("quickstart.py", capsys)
    assert "cycle" in out
    assert "wait if arriving now" in out


def test_trace_files_runs(capsys):
    out = run_example("trace_files.py", capsys)
    assert "Fig. 2-style characterization" in out
    assert "update interval" in out


def test_all_examples_importable():
    """Every example must at least parse (syntax gate for the slow ones)."""
    import ast

    for path in sorted(EXAMPLES.glob("*.py")):
        ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
