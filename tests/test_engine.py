"""Unit tests for repro.sim.engine (city-scale driver)."""

import numpy as np
import pytest

from repro.lights.intersection import SignalPlan, attach_signals_to_network
from repro.network.roadnet import grid_network
from repro.sim.engine import CitySimulation
from repro.sim.queueing import ApproachConfig


@pytest.fixture(scope="module")
def setup():
    net = grid_network(2, 2, 500.0)
    plans = {i: [SignalPlan(98, 39, offset_s=10 * i)] for i in range(4)}
    signals = attach_signals_to_network(net, plans)
    rates = {s.id: 300.0 for s in net.segments}
    return net, signals, rates


class TestCitySimulation:
    def test_runs_all_configured_approaches(self, setup):
        net, signals, rates = setup
        sim = CitySimulation(net, signals, rates, ApproachConfig(segment_length_m=400))
        res = sim.run(0.0, 600.0, seed=1, serial=True)
        assert set(res.tracks_by_segment) == set(rates)
        assert res.n_vehicles() > 0

    def test_subset_of_segments(self, setup):
        net, signals, _ = setup
        rates = {0: 300.0, 1: 200.0}
        sim = CitySimulation(net, signals, rates)
        res = sim.run(0.0, 600.0, seed=1, serial=True)
        assert set(res.tracks_by_segment) == {0, 1}

    def test_deterministic_across_worker_counts(self, setup):
        net, signals, rates = setup
        sim = CitySimulation(net, signals, rates, ApproachConfig(segment_length_m=400))
        serial = sim.run(0.0, 400.0, seed=3, serial=True)
        parallel = sim.run(0.0, 400.0, seed=3, max_workers=4)
        assert serial.n_vehicles() == parallel.n_vehicles()
        for sid in rates:
            a, b = serial.tracks_by_segment[sid], parallel.tracks_by_segment[sid]
            assert len(a) == len(b)
            for ta, tb in zip(a, b):
                np.testing.assert_array_equal(ta.dist_to_stopline_m, tb.dist_to_stopline_m)

    def test_segment_length_clamped_to_geometry(self, setup):
        net, signals, rates = setup
        # config asks for a 10 km run-up on 500 m segments: must clamp
        sim = CitySimulation(
            net, signals, rates, ApproachConfig(segment_length_m=10_000.0)
        )
        specs = sim.specs(0.0, 100.0)
        assert all(s.config.segment_length_m <= 500.0 + 1e-6 for s in specs)

    def test_rejects_uncontrolled_target(self, setup):
        net, signals, _ = setup
        bad_signals = dict(signals)
        del bad_signals[0]
        with pytest.raises(ValueError):
            CitySimulation(net, bad_signals, {s.id: 100.0 for s in net.segments})

    def test_rejects_negative_rate(self, setup):
        net, signals, _ = setup
        with pytest.raises(ValueError):
            CitySimulation(net, signals, {0: -5.0})

    def test_hourly_profile_used(self, setup):
        net, signals, rates = setup
        profile = np.ones(24)
        sim = CitySimulation(net, signals, rates, hourly_profile=profile)
        specs = sim.specs(0.0, 100.0)
        from repro.sim.arrivals import TimeVaryingArrivals
        assert all(isinstance(s.arrivals, TimeVaryingArrivals) for s in specs)

    def test_result_helpers(self, setup):
        net, signals, rates = setup
        sim = CitySimulation(net, signals, rates)
        res = sim.run(0.0, 300.0, seed=2, serial=True)
        some = res.tracks_for_segments([0, 1])
        assert len(some) == len(res.tracks_by_segment[0]) + len(res.tracks_by_segment[1])
        assert len(res.all_tracks()) == res.n_vehicles()
