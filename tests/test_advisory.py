"""Unit + property tests for the green-light speed advisory (GLOSA)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lights.schedule import LightSchedule
from repro.navigation.advisory import (
    advise_speed,
    advisory_trial,
    green_windows,
)


SCHED = LightSchedule(cycle_s=100.0, red_s=40.0, offset_s=0.0)


class TestGreenWindows:
    def test_covers_complement_of_red(self):
        wins = green_windows(SCHED, 0.0, 200.0)
        np.testing.assert_allclose(wins, [(40.0, 100.0), (140.0, 200.0)])

    def test_starts_mid_green(self):
        wins = green_windows(SCHED, 50.0, 100.0)
        assert wins[0] == (50.0, 100.0)

    def test_total_green_fraction(self):
        wins = green_windows(SCHED, 0.0, 1000.0)
        total = sum(e - s for s, e in wins)
        assert total == pytest.approx(600.0)

    @given(t0=st.floats(0, 500), horizon=st.floats(10, 500))
    @settings(max_examples=30)
    def test_property_windows_are_green(self, t0, horizon):
        for s, e in green_windows(SCHED, t0, horizon):
            mid = (s + e) / 2
            assert bool(SCHED.is_green(mid))


class TestAdviseSpeed:
    def test_advice_lands_on_green(self):
        # approaching 400 m out at t=0 (light is red until 40 s)
        advice = advise_speed(SCHED, 400.0, 0.0, v_min_mps=6.0, v_max_mps=14.0)
        assert advice.advised_speed_mps is not None
        assert not advice.will_stop
        assert bool(SCHED.is_green(advice.arrives_at))

    def test_respects_speed_range(self):
        advice = advise_speed(SCHED, 400.0, 0.0, v_min_mps=6.0, v_max_mps=14.0)
        assert 6.0 <= advice.advised_speed_mps <= 14.0

    def test_no_feasible_green_reports_stop(self):
        # 50 m out, red for the next 39 s, even crawling can't outlast it
        sched = LightSchedule(100.0, 40.0, offset_s=-1.0)  # red since t=-1
        advice = advise_speed(sched, 50.0, 0.0, v_min_mps=6.0, v_max_mps=14.0)
        assert advice.will_stop and advice.advised_speed_mps is None
        assert advice.wait_s > 0

    def test_cruise_wait_is_baseline(self):
        advice = advise_speed(SCHED, 280.0, 0.0, v_min_mps=6.0, v_max_mps=14.0)
        # cruising at 14 m/s arrives at t=20 (red until 40): waits 20 s
        assert advice.cruise_wait_s == pytest.approx(20.0)
        assert advice.idling_saved_s == pytest.approx(20.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            advise_speed(SCHED, 0.0, 0.0)
        with pytest.raises(ValueError):
            advise_speed(SCHED, 100.0, 0.0, v_min_mps=10.0, v_max_mps=5.0)

    @given(
        distance=st.floats(100.0, 1500.0),
        t_now=st.floats(0.0, 500.0),
        offset=st.floats(0.0, 100.0),
    )
    @settings(max_examples=60)
    def test_property_green_arrival_when_advised(self, distance, t_now, offset):
        sched = LightSchedule(100.0, 40.0, offset_s=offset)
        advice = advise_speed(sched, distance, t_now, margin_s=1.0)
        if advice.advised_speed_mps is not None:
            assert bool(sched.is_green(advice.arrives_at))
            assert advice.wait_s == 0.0


class TestAdvisoryTrial:
    def test_perfect_knowledge_never_slower(self):
        # with a zero safety margin the advisory is exactly optimal;
        # a positive margin may trade a bounded slowdown for robustness
        rng = np.random.default_rng(0)
        for _ in range(50):
            t0 = float(rng.uniform(0, 200))
            d = float(rng.uniform(150, 900))
            adv, cruise, _ = advisory_trial(SCHED, SCHED, d, t0, margin_s=0.0)
            assert adv <= cruise + 1e-6

    def test_erroneous_belief_degrades_gracefully(self):
        # believed schedule 4 s out of phase: advice may stop, but total
        # time stays bounded by cruise + one red
        believed = SCHED.shifted(4.0)
        rng = np.random.default_rng(1)
        for _ in range(30):
            t0 = float(rng.uniform(0, 200))
            adv, cruise, _ = advisory_trial(SCHED, believed, 500.0, t0)
            assert adv <= cruise + SCHED.red_s + 1e-6

    def test_stops_avoided_statistic(self):
        rng = np.random.default_rng(2)
        stops_adv = stops_cruise = 0
        for _ in range(200):
            t0 = float(rng.uniform(0, 500))
            d = float(rng.uniform(200, 800))
            _, _, stopped = advisory_trial(SCHED, SCHED, d, t0)
            stops_adv += stopped
            t_cruise = t0 + d / 14.0
            stops_cruise += SCHED.wait_if_arriving(t_cruise) > 0
        assert stops_adv < stops_cruise
