"""End-to-end integration tests across the whole stack."""

import io

import numpy as np
import pytest

from repro._util import circular_diff
from repro.core import identify_many, monitor_cycle, detect_plan_changes, repair_outliers
from repro.eval import compare, evaluate_at_times, simulate_and_partition
from repro.lights.intersection import SignalPlan, attach_signals_to_network
from repro.matching import match_trace, partition_by_light
from repro.navigation import (
    EstimatedProvider,
    GroundTruthProvider,
    TravelConfig,
    TripSimulator,
    navigate,
    shortest_drive_path,
)
from repro.network import grid_network
from repro.scenario import small_scenario
from repro.sim import ApproachConfig, CitySimulation
from repro.trace import TraceGenerator, read_trace, write_trace

# Full-stack sweeps (multi-second simulations, plan-change detection);
# the fast CI tier skips them.
pytestmark = pytest.mark.slow


class TestSimulateToIdentify:
    def test_full_stack_accuracy(self, city, partitions):
        """simulate → report → match → partition → identify, scored."""
        ests, fails = identify_many(partitions, 5400.0, serial=True)
        assert len(ests) >= 6
        good = 0
        for key, est in ests.items():
            iid, app = key
            truth = city.truth_at(iid, app, 5400.0)
            err = compare(est, truth)
            if abs(err.cycle_s) <= 3.0 and abs(err.change_s) <= 10.0:
                good += 1
        assert good >= 5

    def test_wire_format_does_not_change_results(self, city, trace):
        """Serializing the trace to the Table I text format and parsing
        it back must yield the same identification outcome."""
        buf = io.StringIO()
        write_trace(trace.time_window(0.0, 3600.0), buf)
        buf.seek(0)
        back = read_trace(buf)
        m1 = match_trace(trace.time_window(0.0, 3600.0), city.net)
        m2 = match_trace(back, city.net)
        # 1e-6 deg quantization and 1 s rounding: nearly all records
        # must land on the same segment
        same = (m1.segment_id == m2.segment_id).mean()
        assert same > 0.98


class TestScheduleChangeDetection:
    def test_detects_planted_plan_switch(self):
        """A light switching plans mid-simulation must be caught by the
        §VII monitor."""
        net = grid_network(2, 2, 500.0)
        plans = {
            i: [
                SignalPlan(98.0, 39.0, start_second_of_day=0.0),
                SignalPlan(150.0, 75.0, start_second_of_day=2.0 * 3600.0),
            ]
            for i in range(4)
        }
        signals = attach_signals_to_network(net, plans)
        rates = {s.id: 500.0 for s in net.segments}
        sim = CitySimulation(net, signals, rates, ApproachConfig(segment_length_m=400.0))
        res = sim.run(0.0, 4 * 3600.0, seed=5)
        gen = TraceGenerator(net)
        tr = gen.generate(res, rng=np.random.default_rng(2))
        parts = partition_by_light(match_trace(tr, net), net)

        p = parts[(0, "EW")]
        series = monitor_cycle(p, 0.0, 4 * 3600.0, every_s=300.0, window_s=1800.0)
        changes = detect_plan_changes(repair_outliers(series))
        assert changes, "plan switch missed"
        best = min(changes, key=lambda c: abs(c.at_time - 2.0 * 3600.0))
        # detection latency is bounded by the monitoring window
        assert abs(best.at_time - 2.0 * 3600.0) <= 2100.0
        assert best.new_cycle_s == pytest.approx(150.0, abs=8.0)


class TestIdentifiedSchedulesDriveNavigation:
    def test_estimated_provider_saves_time(self, city, partitions):
        """Close the loop: identify schedules from traces, then use them
        for light-aware navigation on the same ground truth."""
        ests, _ = identify_many(partitions, 5400.0, serial=True)
        schedules = {k: e.schedule for k, e in ests.items()}
        sim = TripSimulator(city.net, city.signals, TravelConfig(11.0))
        est_provider = EstimatedProvider(schedules)
        oracle = GroundTruthProvider(city.signals)

        base_total = aware_total = oracle_total = 0.0
        for depart in (6000.0, 6100.0, 6234.0, 6391.0):
            base = sim.simulate_path(shortest_drive_path(city.net, 0, 3), depart)
            aware = navigate(sim, est_provider, 0, 3, depart)
            best = navigate(sim, oracle, 0, 3, depart)
            base_total += base.total_time_s
            aware_total += aware.total_time_s
            oracle_total += best.total_time_s
        assert oracle_total <= base_total + 1e-6
        # schedules identified from traces should recover most of the
        # oracle's advantage (or at least not hurt)
        assert aware_total <= base_total * 1.05


class TestEvalHarnessEndToEnd:
    def test_simulate_and_partition_contract(self):
        scn = small_scenario(rate_per_hour=300.0)
        trace, parts = simulate_and_partition(scn, 0.0, 1800.0, seed=3, serial=True)
        assert len(trace) > 100
        assert parts and all(len(p) > 0 for p in parts.values())

    def test_full_evaluation_run(self, city, partitions):
        res = evaluate_at_times(
            partitions, city.truth_at, [4500.0, 5400.0], serial=True
        )
        assert len(res) == 16
        ok = ~np.isnan(res.cycle_errors)
        assert ok.sum() >= 12
