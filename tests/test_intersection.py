"""Unit tests for repro.lights.intersection."""

import numpy as np
import pytest

from repro.lights.controller import PreProgrammedController, StaticController
from repro.lights.intersection import (
    IntersectionSignals,
    SignalPlan,
    attach_signals_to_network,
    make_intersection_signals,
)
from repro.network.roadnet import Approach, grid_network


class TestSignalPlan:
    def test_ns_and_ew_complementary(self):
        p = SignalPlan(cycle_s=98, ns_red_s=39, offset_s=10)
        ns, ew = p.ns_schedule(), p.ew_schedule()
        assert ew.cycle_s == ns.cycle_s
        assert ew.red_s == pytest.approx(ns.green_s)
        for t in np.linspace(0, 300, 37):
            assert bool(ns.is_red(t)) == bool(ew.is_green(t))


class TestMakeIntersectionSignals:
    def test_single_plan_static(self):
        sig = make_intersection_signals(3, [SignalPlan(98, 39)])
        assert isinstance(sig.controller_for(Approach.NS), StaticController)
        assert sig.shared_cycle_at(0.0) == pytest.approx(98)

    def test_multi_plan_preprogrammed(self):
        plans = [
            SignalPlan(98, 39, start_second_of_day=0.0),
            SignalPlan(140, 70, start_second_of_day=7 * 3600.0),
        ]
        sig = make_intersection_signals(0, plans)
        assert isinstance(sig.controller_for(Approach.NS), PreProgrammedController)
        assert sig.shared_cycle_at(8 * 3600.0) == pytest.approx(140)
        assert sig.shared_cycle_at(1000.0) == pytest.approx(98)

    def test_groups_never_both_green(self):
        sig = make_intersection_signals(0, [SignalPlan(98, 39, offset_s=17)])
        for t in np.linspace(0, 500, 101):
            ns_red = sig.controllers[Approach.NS].is_red(t)
            ew_red = sig.controllers[Approach.EW].is_red(t)
            assert ns_red or ew_red  # complementary: exactly one red

    def test_rejects_empty_plans(self):
        with pytest.raises(ValueError):
            make_intersection_signals(0, [])

    def test_missing_group_rejected(self):
        with pytest.raises(ValueError):
            IntersectionSignals(0, {Approach.NS: StaticController(SignalPlan(98, 39).ns_schedule())})


class TestSegmentLookup:
    def test_controller_for_segment(self):
        net = grid_network(2, 2, 500.0)
        sig = make_intersection_signals(0, [SignalPlan(98, 39)])
        for seg in net.incoming(0):
            ctl = sig.controller_for_segment(seg)
            assert ctl is sig.controllers[seg.approach]

    def test_rejects_foreign_segment(self):
        net = grid_network(2, 2, 500.0)
        sig = make_intersection_signals(0, [SignalPlan(98, 39)])
        foreign = net.incoming(3)[0]
        with pytest.raises(ValueError):
            sig.controller_for_segment(foreign)


class TestAttach:
    def test_attach_covers_all_signalized(self):
        net = grid_network(2, 2)
        plans = {i: [SignalPlan(98, 39)] for i in range(4)}
        out = attach_signals_to_network(net, plans)
        assert set(out) == {0, 1, 2, 3}

    def test_missing_plan_raises(self):
        net = grid_network(2, 2)
        with pytest.raises(ValueError):
            attach_signals_to_network(net, {0: [SignalPlan(98, 39)]})
