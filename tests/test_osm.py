"""Tests for the OpenStreetMap XML importer."""

import numpy as np
import pytest

from repro.matching import match_trace, partition_by_light
from repro.network.osm import parse_osm
from repro.trace.records import TraceArrays

# A hand-written micro-map: one signalized crossroad where an east-west
# primary road (way 100) crosses a north-south residential road
# (way 200); plus a one-way service spur (way 300) and a footway that
# must be ignored.  Node 2, the crossroad itself, carries the signal.
OSM_XML = """<?xml version='1.0' encoding='UTF-8'?>
<osm version="0.6" generator="handmade">
  <node id="1" lat="22.5400" lon="114.0400"/>
  <node id="2" lat="22.5400" lon="114.0500">
    <tag k="highway" v="traffic_signals"/>
  </node>
  <node id="3" lat="22.5400" lon="114.0600"/>
  <node id="4" lat="22.5350" lon="114.0500"/>
  <node id="6" lat="22.5450" lon="114.0500"/>
  <node id="7" lat="22.5450" lon="114.0600"/>
  <way id="100">
    <nd ref="1"/><nd ref="2"/><nd ref="3"/>
    <tag k="highway" v="primary"/>
    <tag k="name" v="ShenNan Road"/>
  </way>
  <way id="200">
    <nd ref="4"/><nd ref="2"/><nd ref="6"/>
    <tag k="highway" v="residential"/>
  </way>
  <way id="300">
    <nd ref="6"/><nd ref="7"/>
    <tag k="highway" v="service"/>
    <tag k="oneway" v="yes"/>
  </way>
  <way id="400">
    <nd ref="1"/><nd ref="4"/>
    <tag k="highway" v="footway"/>
  </way>
</osm>
"""


@pytest.fixture(scope="module")
def net():
    return parse_osm(OSM_XML)


class TestParse:
    def test_rejects_non_osm(self):
        with pytest.raises(ValueError):
            parse_osm("<gpx></gpx>")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            parse_osm("<osm></osm>")

    def test_footway_ignored(self, net):
        assert all("footway" not in s.name for s in net.segments)

    def test_node_count(self, net):
        # graph nodes: 1, 3 (endpoints of way 100), 2 (shared), 4, 6
        # (endpoints of 200), 7 (endpoint of 300)
        names = {n.name for n in net.intersections}
        assert names == {"osm:1", "osm:2", "osm:3", "osm:4", "osm:6", "osm:7"}

    def test_signal_detection(self, net):
        sig = [n for n in net.intersections if n.signalized]
        assert [n.name for n in sig] == ["osm:2"]

    def test_bidirectional_segments(self, net):
        # way 100 splits at node 2: 1<->2 and 2<->3, two directions each
        ew = [s for s in net.segments if s.name == "ShenNan Road"]
        assert len(ew) == 4

    def test_oneway_respected(self, net):
        spur = [s for s in net.segments if "service" in s.name]
        assert len(spur) == 1

    def test_geometry_sane(self, net):
        for s in net.segments:
            assert s.length > 10.0
        # the east-west road runs ~1 km per half (0.01 deg lon)
        ew = [s for s in net.segments if s.name == "ShenNan Road"]
        assert ew[0].length == pytest.approx(1026, rel=0.05)


class TestPipelineCompatibility:
    def test_map_matching_works_on_osm_network(self, net):
        # a fix on ShenNan Road heading east must match an EW segment
        seg = next(s for s in net.segments if s.name == "ShenNan Road")
        x, y = seg.point_at(seg.length / 2)
        lon, lat = net.frame.to_geographic(np.array([x]), np.array([y]))
        tr = TraceArrays(
            taxi_id=[1], t=[0.0], lon=lon, lat=lat,
            speed_kmh=[30.0], heading_deg=[seg.heading],
        )
        m = match_trace(tr, net)
        assert m.segment_id[0] >= 0
        matched = net.segments[int(m.segment_id[0])]
        assert matched.name == "ShenNan Road"

    def test_partitioning_works_on_osm_network(self, net):
        # records near the signalized node partition under its light
        sig = next(n for n in net.intersections if n.signalized)
        inc = net.incoming(sig.id)
        assert len(inc) == 4  # a four-leg crossroad
        seg = inc[0]
        x, y = seg.point_at(30.0)
        lon, lat = net.frame.to_geographic(np.array([x]), np.array([y]))
        tr = TraceArrays(
            taxi_id=[1], t=[0.0], lon=lon, lat=lat,
            speed_kmh=[0.0], heading_deg=[seg.heading],
        )
        parts = partition_by_light(match_trace(tr, net), net)
        assert any(k[0] == sig.id for k in parts)


class TestOsmEndToEnd:
    def test_simulate_and_identify_on_osm_network(self, net):
        """The full pipeline must run unchanged on an OSM-derived map."""
        from repro.core import identify_many
        from repro.lights.intersection import SignalPlan, attach_signals_to_network
        from repro.sim import ApproachConfig, CitySimulation
        from repro.trace import TraceGenerator

        sig = next(n for n in net.intersections if n.signalized)
        plans = {sig.id: [SignalPlan(cycle_s=98.0, ns_red_s=39.0, offset_s=12.0)]}
        signals = attach_signals_to_network(net, plans)
        rates = {s.id: 400.0 for s in net.incoming(sig.id)}
        sim = CitySimulation(
            net, signals, rates, ApproachConfig(segment_length_m=400.0)
        )
        res = sim.run(0.0, 5400.0, seed=3, serial=True)
        trace = TraceGenerator(net).generate(res, rng=np.random.default_rng(1))
        assert len(trace) > 500

        parts = partition_by_light(match_trace(trace, net), net)
        ests, _ = identify_many(parts, 5400.0, serial=True)
        assert ests, "at least one approach group must identify"
        locked = [e for e in ests.values() if abs(e.cycle_s - 98.0) <= 3.0]
        assert locked, "the OSM crossroad's cycle must be recoverable"
