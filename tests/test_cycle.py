"""Unit tests for cycle-length identification (§V)."""

import numpy as np
import pytest

from repro.core.cycle import (
    CycleConfig,
    fold_zscore,
    identify_cycle,
    identify_cycle_from_samples,
    refine_cycle_by_folding,
    spectrum,
    stop_end_comb_zscore,
)
from repro.core.signal_types import InsufficientDataError


def square_wave(n, period, duty=0.4, lo=0.0, hi=10.0, phase=0.0):
    t = np.arange(n, dtype=float)
    return np.where(((t + phase) % period) < duty * period, lo, hi)


def sparse_samples(rng, t0, t1, period, duty=0.4, interval=18.0, noise=1.0):
    """Irregular noisy samples of a square-wave speed."""
    t = np.sort(rng.uniform(t0, t1, int((t1 - t0) / interval)))
    v = np.where((t % period) < duty * period, 1.0, 9.0)
    return t, v + rng.normal(0, noise, t.size)


class TestSpectrum:
    def test_pure_sine_peak(self):
        t = np.arange(3600.0)
        sig = np.sin(2 * np.pi * t / 100.0)
        periods, mag = spectrum(sig)
        assert periods[np.argmax(mag)] == pytest.approx(100.0, rel=0.01)

    def test_dc_removed(self):
        sig = np.full(100, 7.0)
        _, mag = spectrum(sig)
        assert mag.max() == pytest.approx(0.0, abs=1e-9)

    def test_eq2_period_formula(self):
        # paper's example: 3600 s window, strongest bin 37 -> 97.3 s
        sig = square_wave(3600, 3600 / 37)
        periods, mag = spectrum(sig)
        best = np.argmax(mag)
        assert best + 1 == 37
        assert periods[best] == pytest.approx(3600 / 37)


class TestIdentifyCycle:
    def test_square_wave(self):
        est = identify_cycle(square_wave(1800, 98.0))
        assert est.cycle_s == pytest.approx(98.0, abs=3.0)
        assert est.quality > 2.0

    def test_band_limits_respected(self):
        est = identify_cycle(square_wave(1800, 98.0),
                             CycleConfig(min_cycle_s=150.0, max_cycle_s=300.0))
        assert est.cycle_s >= 150.0  # the true period is outside the band

    def test_empty_band_raises(self):
        with pytest.raises(InsufficientDataError):
            identify_cycle(square_wave(100, 20.0),
                           CycleConfig(min_cycle_s=200.0, max_cycle_s=300.0))


class TestFoldZscore:
    def test_true_period_scores_high(self, rng):
        t, v = sparse_samples(rng, 0, 1800, 98.0)
        assert fold_zscore(t, v, 98.0) > 3.0

    def test_wrong_period_scores_low(self, rng):
        t, v = sparse_samples(rng, 0, 1800, 98.0)
        assert fold_zscore(t, v, 71.0) < fold_zscore(t, v, 98.0)

    def test_constant_signal(self, rng):
        t = np.sort(rng.uniform(0, 1000, 50))
        assert fold_zscore(t, np.full(50, 5.0), 98.0) == -np.inf

    def test_too_few_samples(self):
        assert fold_zscore(np.array([1.0, 2.0]), np.array([1.0, 2.0]), 50.0) == -np.inf


class TestStopEndComb:
    def test_clustered_ends_score_high(self, rng):
        # ends at green onset: phase 40 of a 98 s cycle, +-2 s
        k = rng.integers(0, 40, 60)
        ends = k * 98.0 + 40.0 + rng.normal(0, 2.0, 60)
        assert stop_end_comb_zscore(ends, 98.0) > stop_end_comb_zscore(ends, 83.0)

    def test_few_events(self):
        assert stop_end_comb_zscore(np.array([1.0, 2.0]), 98.0) == -np.inf


class TestIdentifyFromSamples:
    def test_recovers_cycle_from_sparse_noisy_samples(self, rng):
        t, v = sparse_samples(rng, 0, 1800, 98.0, interval=10.0)
        est = identify_cycle_from_samples(t, v, 0.0, 1800.0)
        assert est.cycle_s == pytest.approx(98.0, abs=1.0)
        assert est.n_samples == t.size

    def test_paper_literal_mode(self, rng):
        t, v = sparse_samples(rng, 0, 1800, 98.0, interval=8.0, noise=0.5)
        cfg = CycleConfig(n_candidates=1, refine=False, stop_end_weight=0.0)
        est = identify_cycle_from_samples(t, v, 0.0, 1800.0, cfg)
        # plain argmax with leakage: within one DFT bin of truth
        assert est.cycle_s == pytest.approx(98.0, abs=6.0)

    def test_stop_ends_break_harmonic_ties(self, rng):
        t, v = sparse_samples(rng, 0, 1800, 98.0, interval=18.0, noise=1.5)
        k = rng.integers(0, 18, 60)
        ends = k * 98.0 + 39.0 + rng.normal(0, 2.0, 60)
        with_ends = identify_cycle_from_samples(t, v, 0.0, 1800.0, stop_ends=ends)
        assert with_ends.cycle_s == pytest.approx(98.0, abs=1.5)

    def test_subharmonic_preference(self, rng):
        # even if the DFT's strongest bin is the 2x harmonic, the final
        # answer must land on the fundamental
        t, v = sparse_samples(rng, 0, 3600, 120.0, interval=12.0, noise=0.5)
        est = identify_cycle_from_samples(t, v, 0.0, 3600.0)
        assert est.cycle_s == pytest.approx(120.0, abs=2.0)

    def test_sparse_window_raises(self):
        with pytest.raises(InsufficientDataError):
            identify_cycle_from_samples(
                np.array([10.0, 700.0]), np.array([0.0, 5.0]), 0.0, 1800.0
            )


class TestRefine:
    def test_refines_to_true_period(self, rng):
        t, v = sparse_samples(rng, 0, 1800, 98.0, interval=10.0, noise=0.5)
        refined = refine_cycle_by_folding(t, v, 100.0)
        assert refined == pytest.approx(98.0, abs=0.5)

    def test_too_few_samples_passthrough(self):
        t = np.array([1.0, 2.0, 3.0])
        assert refine_cycle_by_folding(t, t, 77.0) == 77.0


class TestConfigValidation:
    def test_bad_band(self):
        with pytest.raises(ValueError):
            CycleConfig(min_cycle_s=100.0, max_cycle_s=50.0)

    def test_bad_candidates(self):
        with pytest.raises(ValueError):
            CycleConfig(n_candidates=0)
