"""Unit tests for repro.sim.arrivals."""

import numpy as np
import pytest

from repro.sim.arrivals import DAY_PROFILE_SHENZHEN, PoissonArrivals, TimeVaryingArrivals


class TestPoisson:
    def test_sorted_within_window(self, rng):
        a = PoissonArrivals(600.0).sample(100.0, 700.0, rng)
        assert np.all(np.diff(a) >= 0)
        assert a.min() >= 100.0 and a.max() < 700.0

    def test_rate_matches(self, rng):
        a = PoissonArrivals(600.0).sample(0.0, 36_000.0, rng)
        # 600/h over 10h -> ~6000 arrivals
        assert a.size == pytest.approx(6000, rel=0.1)

    def test_zero_rate_empty(self, rng):
        assert PoissonArrivals(0.0).sample(0, 1000, rng).size == 0

    def test_empty_window(self, rng):
        assert PoissonArrivals(100.0).sample(50.0, 50.0, rng).size == 0

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(-1.0)

    def test_mean_rate(self):
        assert PoissonArrivals(123.0).mean_rate(0, 100) == 123.0


class TestTimeVarying:
    def test_profile_validation(self):
        with pytest.raises(ValueError):
            TimeVaryingArrivals(100.0, [1.0] * 23)
        with pytest.raises(ValueError):
            TimeVaryingArrivals(100.0, [-1.0] + [1.0] * 23)

    def test_rate_at_follows_profile(self):
        tv = TimeVaryingArrivals(100.0, DAY_PROFILE_SHENZHEN)
        assert tv.rate_at(4 * 3600.0) == pytest.approx(100.0 * DAY_PROFILE_SHENZHEN[4])
        # wraps past midnight
        assert tv.rate_at(26 * 3600.0) == pytest.approx(100.0 * DAY_PROFILE_SHENZHEN[2])

    def test_thinning_respects_intensity(self, rng):
        profile = np.ones(24)
        profile[0:12] = 0.0  # nothing in the first half of the day
        tv = TimeVaryingArrivals(400.0, profile)
        a = tv.sample(0.0, 86_400.0, rng)
        assert np.all(a >= 12 * 3600.0)
        # 400/h over the 12 active hours
        assert a.size == pytest.approx(400 * 12, rel=0.15)

    def test_zero_base_rate(self, rng):
        tv = TimeVaryingArrivals(0.0)
        assert tv.sample(0, 86_400, rng).size == 0

    def test_mean_rate_between_extremes(self):
        tv = TimeVaryingArrivals(100.0)
        m = tv.mean_rate(0.0, 86_400.0)
        assert 100.0 * DAY_PROFILE_SHENZHEN.min() <= m <= 100.0 * DAY_PROFILE_SHENZHEN.max()

    def test_default_profile_shape(self):
        # Fig 2(a) shape: overnight lull, evening peak
        assert DAY_PROFILE_SHENZHEN[4] < DAY_PROFILE_SHENZHEN[19]
        assert DAY_PROFILE_SHENZHEN.shape == (24,)
