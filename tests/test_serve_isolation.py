"""Snapshot-isolation property oracle for the serving layer.

The serving layer's central claim: every snapshot a reader observes is
**exactly** what a fresh batched run over the first ``version`` chunks
would produce — never a mix of two versions, never a half-applied map,
never a version that goes backwards.  This suite drives two tenants
through seeded interleavings (seed-varied chunk boundaries, producer
yield patterns, and reader mixes) and checks every observed snapshot
against a from-scratch rebuild:

* **bit-for-bit parity** — rebuild the first ``version`` chunks into a
  fresh store and re-identify at the snapshot's recorded per-light eval
  times (:func:`repro.serve.verify_snapshot_parity`); estimates must
  match to the last bit, failures by identity;
* **no torn maps** — :meth:`Snapshot.integrity_errors` is empty on
  every observation;
* **monotonic reads** — per reader, observed versions never decrease;
* **publish-once** — two observations of the same version are the same
  immutable object.

Interleavings vary across seeds but each seed is fully deterministic
(virtual clock, inline applies), so a failure replays exactly.
"""

import asyncio

import numpy as np
import pytest

from repro.scenario import synthetic_lights, synthetic_partitions
from repro.serve import (
    StreamService,
    TenantQuota,
    verify_snapshot_parity,
)
from repro.stream import split_by_time
from repro.trace.store import PartitionStore

HORIZON = 1200.0
N_CHUNKS = 4
N_SEEDS = 22


class VirtualClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        self.now += 1e-3
        return self.now


def _city(seed):
    lights = synthetic_lights(1, seed=seed)
    return synthetic_partitions(lights, 0.0, HORIZON, seed=seed + 1)


def _seeded_chunks(partitions, rng):
    """N_CHUNKS slices at rng-perturbed boundaries (interleaving variety)."""
    cuts = np.sort(rng.uniform(0.15, 0.85, size=N_CHUNKS - 1)) * HORIZON
    edges = [0.0] + [float(c) for c in cuts] + [HORIZON + 1e-9]
    return split_by_time(partitions, edges)


async def _producer(service, name, chunks, pauses):
    for chunk, n_pauses in zip(chunks, pauses):
        for _ in range(n_pauses):
            await asyncio.sleep(0)
        await service.submit(name, chunk)


async def _reader(service, name, extra_reads, observed):
    """Pace on freshness, mix in unconstrained reads, record everything."""
    last = -1
    for version in range(1, N_CHUNKS + 1):
        snaps = [await service.evaluate(name, min_version=version)]
        for _ in range(extra_reads[version - 1]):
            snaps.append(await service.evaluate(name))
        for snap in snaps:
            assert snap.version >= last, (
                f"stale read: {name} saw v{snap.version} after v{last}"
            )
            last = max(last, snap.version)
            assert snap.integrity_errors() == [], "torn snapshot observed"
            observed.append(snap)


async def _drive(seed, chunks_by_tenant, observed):
    rng = np.random.default_rng(seed + 500)
    service = StreamService(clock=VirtualClock(), offload=False)
    coros = []
    for name, chunks in chunks_by_tenant.items():
        pauses = rng.integers(0, 3, size=N_CHUNKS).tolist()
        extra = rng.integers(0, 3, size=N_CHUNKS).tolist()
        coros.append(_producer(service, name, chunks, pauses))
        coros.append(_reader(service, name, extra, observed[name]))
    async with service:
        service_names = list(chunks_by_tenant)
        for name in service_names:
            service.add_tenant(name, quota=TenantQuota(max_queue_depth=2))
        await asyncio.gather(*coros)


def _prefix_partitions(chunks, version):
    """The exact rows a snapshot at ``version`` was built from (FIFO)."""
    store = PartitionStore.from_partitions({})
    for chunk in chunks[:version]:
        store.append_partitions(chunk)
    return {key: store.partition(key) for key in store}


@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_every_observed_snapshot_matches_fresh_rebuild(seed):
    rng = np.random.default_rng(seed)
    chunks_by_tenant = {
        "east": _seeded_chunks(_city(10 * seed), rng),
        "west": _seeded_chunks(_city(10 * seed + 5), rng),
    }
    observed = {name: [] for name in chunks_by_tenant}
    asyncio.run(_drive(seed, chunks_by_tenant, observed))

    for name, chunks in chunks_by_tenant.items():
        snaps = observed[name]
        assert snaps, "reader observed nothing"
        assert max(s.version for s in snaps) == N_CHUNKS
        # publish-once: equal versions are the identical immutable object
        by_version = {}
        for snap in snaps:
            prior = by_version.setdefault(snap.version, snap)
            assert prior is snap, f"version {snap.version} published twice"
        for version, snap in sorted(by_version.items()):
            prefix = _prefix_partitions(chunks, version)
            assert snap.n_records == sum(
                len(p.trace) for p in prefix.values()
            )
            mismatches = verify_snapshot_parity(snap, prefix)
            assert mismatches == [], (
                f"{name} v{version} diverged from a fresh rebuild: "
                f"{mismatches}"
            )
