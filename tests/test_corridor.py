"""Tests for the corridor simulation and journey-level trace sampling."""

import numpy as np
import pytest

from repro.core import identify_many
from repro.matching import match_trace, partition_by_light
from repro.sim import CorridorSpec, simulate_corridor
from repro.trace import TraceGenerator


@pytest.fixture(scope="module")
def corridor():
    spec = CorridorSpec(
        n_lights=4, segment_length_m=500.0, entry_rate_per_hour=450.0,
        cycle_s=100.0, red_s=45.0,
    )
    return spec, simulate_corridor(spec, 0.0, 5400.0, seed=5)


class TestSpec:
    def test_green_wave_offsets(self):
        spec = CorridorSpec(n_lights=3, segment_length_m=550.0)
        offs = spec.green_wave_offsets()
        tt = 550.0 / spec.params.free_speed_mps
        assert offs == (0.0, pytest.approx(tt), pytest.approx(2 * tt))

    def test_validation(self):
        with pytest.raises(ValueError):
            CorridorSpec(n_lights=0)
        with pytest.raises(ValueError):
            CorridorSpec(red_s=200.0, cycle_s=100.0)
        with pytest.raises(ValueError):
            CorridorSpec(n_lights=3, offsets_s=(0.0, 1.0))


class TestTopology:
    def test_network_shape(self, corridor):
        spec, res = corridor
        assert len(res.net.signalized_intersections()) == spec.n_lights
        # entry + exit feeders
        assert len(res.net.intersections) == spec.n_lights + 2
        assert len(res.net.segments) == spec.n_lights + 1

    def test_approach_controlled_by_its_light(self, corridor):
        spec, res = corridor
        for i in range(spec.n_lights):
            seg = res.net.segments[i]
            assert seg.to_id == i
            ctl = res.signals[i].controller_for_segment(seg)
            sched = ctl.schedule_at(0.0)
            assert sched.cycle_s == spec.cycle_s
            assert sched.red_s == pytest.approx(spec.red_s)


class TestJourneys:
    def test_identity_preserved(self, corridor):
        spec, res = corridor
        for legs in res.journeys:
            sids = [tr.segment_id for tr in legs]
            assert sids == sorted(sids)
            assert sids == list(range(sids[0], sids[0] + len(sids)))
            for a, b in zip(legs, legs[1:]):
                assert b.entered_at >= a.exited_at - 1.0

    def test_most_journeys_complete(self, corridor):
        spec, res = corridor
        full = [j for j in res.journeys if len(j) == spec.n_lights]
        assert len(full) > 0.7 * len(res.journeys)

    def test_no_leg_shared_between_journeys(self, corridor):
        _, res = corridor
        seen = set()
        for legs in res.journeys:
            for tr in legs:
                key = id(tr)
                assert key not in seen
                seen.add(key)

    def test_green_wave_beats_antiwave(self):
        wave_spec = CorridorSpec(n_lights=3, entry_rate_per_hour=250.0)
        wave = simulate_corridor(wave_spec, 0.0, 2700.0, seed=3)
        # adversarial offsets: each platoon arrives exactly as the next
        # light turns red, waiting out the full red at every link
        red, cycle = 45.0, 100.0
        tt = 500.0 / wave_spec.params.free_speed_mps
        a1 = red + tt                   # arrival at light 1
        a2 = a1 + red + tt              # after waiting the red, light 2
        anti_spec = CorridorSpec(
            n_lights=3, entry_rate_per_hour=250.0,
            offsets_s=(0.0, a1 % cycle, a2 % cycle),
        )
        anti = simulate_corridor(anti_spec, 0.0, 2700.0, seed=3)
        tw = wave.corridor_travel_times()
        ta = anti.corridor_travel_times()
        assert tw.size and ta.size
        assert tw.mean() + 20.0 < ta.mean(), "coordination must reduce travel time"


class TestJourneyTraces:
    def test_single_taxi_spans_segments(self, corridor):
        spec, res = corridor
        gen = TraceGenerator(res.net)
        trace = gen.generate_journeys(res.journeys, rng=np.random.default_rng(2),
                                      taxi_fraction=1.0)
        # at least one taxi must report on several different segments
        m = match_trace(trace, res.net)
        sub, segs = m.matched_only()
        spans = {}
        for tid, sid in zip(sub.taxi_id, segs):
            spans.setdefault(int(tid), set()).add(int(sid))
        assert max(len(v) for v in spans.values()) >= 3

    def test_taxi_fraction_respected(self, corridor):
        spec, res = corridor
        gen = TraceGenerator(res.net)
        all_t = gen.generate_journeys(res.journeys, rng=np.random.default_rng(3),
                                      taxi_fraction=1.0)
        some_t = gen.generate_journeys(res.journeys, rng=np.random.default_rng(3),
                                       taxi_fraction=0.3)
        n_all = np.unique(all_t.taxi_id).size
        n_some = np.unique(some_t.taxi_id).size
        assert n_some < 0.6 * n_all

    def test_corridor_identification_end_to_end(self, corridor):
        """Identify every corridor light from journey traces."""
        spec, res = corridor
        gen = TraceGenerator(res.net)
        trace = gen.generate_journeys(res.journeys, rng=np.random.default_rng(4),
                                      taxi_fraction=1.0)
        parts = partition_by_light(match_trace(trace, res.net), res.net)
        ests, fails = identify_many(parts, 5400.0, serial=True)
        locked = sum(1 for e in ests.values() if abs(e.cycle_s - spec.cycle_s) <= 3.0)
        assert locked >= spec.n_lights - 1
