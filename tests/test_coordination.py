"""Unit tests for arterial coordination analysis."""

import numpy as np
import pytest

from repro.core.coordination import (
    corridor_report,
    progression_bandwidth,
    relative_offset,
)
from repro.lights.schedule import LightSchedule


class TestRelativeOffset:
    def test_zero_for_identical(self):
        a = LightSchedule(100, 40, 10)
        assert relative_offset(a, a) == pytest.approx(0.0)

    def test_signed_shift(self):
        a = LightSchedule(100, 40, 0)
        b = LightSchedule(100, 40, 25)
        assert relative_offset(a, b) == pytest.approx(25.0)
        assert relative_offset(b, a) == pytest.approx(-25.0)

    def test_wraps_circularly(self):
        a = LightSchedule(100, 40, 0)
        b = LightSchedule(100, 40, 90)
        assert relative_offset(a, b) == pytest.approx(-10.0)

    def test_red_difference_included(self):
        # offsets compare *green starts*, not red starts
        a = LightSchedule(100, 40, 0)   # green at 40
        b = LightSchedule(100, 60, 0)   # green at 60
        assert relative_offset(a, b) == pytest.approx(20.0)

    def test_mismatched_cycles_rejected(self):
        with pytest.raises(ValueError):
            relative_offset(LightSchedule(100, 40, 0), LightSchedule(120, 40, 0))


class TestProgressionBandwidth:
    def test_perfect_wave(self):
        # downstream green starts exactly one travel time later
        up = LightSchedule(100, 40, 0)
        down = LightSchedule(100, 40, 30)
        assert progression_bandwidth(up, down, 30.0) == pytest.approx(1.0)

    def test_perfect_antiwave(self):
        # platoon arrives exactly into red
        up = LightSchedule(100, 60, 0)      # green 60..100
        down = LightSchedule(100, 40, 90)   # red 90..130 -> arrivals 90..130
        bw = progression_bandwidth(up, down, 30.0)
        assert bw == pytest.approx(0.0, abs=0.05)

    def test_uncoordinated_average(self):
        # averaged over random offsets, the bandwidth approaches the
        # downstream green fraction
        rng = np.random.default_rng(0)
        up = LightSchedule(100, 40, 0)
        bws = [
            progression_bandwidth(
                up, LightSchedule(100, 40, float(rng.uniform(0, 100))), 37.0
            )
            for _ in range(300)
        ]
        assert np.mean(bws) == pytest.approx(0.6, abs=0.05)

    def test_bounds(self):
        up = LightSchedule(100, 40, 0)
        down = LightSchedule(100, 70, 13)
        bw = progression_bandwidth(up, down, 45.0)
        assert 0.0 <= bw <= 1.0


class TestCorridorReport:
    def test_report_structure(self):
        lights = [LightSchedule(100, 40, 30 * i) for i in range(4)]
        report = corridor_report(lights, [30.0, 30.0, 30.0])
        assert len(report) == 3
        # offsets equal the travel times: a designed green wave
        for link in report:
            assert link.bandwidth == pytest.approx(1.0)
            assert "bandwidth" in link.row()

    def test_mismatched_cycle_gets_nan_offset(self):
        lights = [LightSchedule(100, 40, 0), LightSchedule(130, 40, 0)]
        report = corridor_report(lights, [25.0])
        assert np.isnan(report[0].offset_s)
        assert 0.0 <= report[0].bandwidth <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            corridor_report([LightSchedule(100, 40, 0)], [])
        with pytest.raises(ValueError):
            corridor_report(
                [LightSchedule(100, 40, 0), LightSchedule(100, 40, 0)], [1.0, 2.0]
            )

    def test_identified_vs_truth_consistency(self, city, partitions):
        """Coordination analysis on identified schedules must agree with
        the analysis on ground truth (end-to-end sanity)."""
        from repro.core import identify_many
        ests, _ = identify_many(partitions, 5400.0, serial=True)
        keys = [(0, "EW"), (1, "EW")]
        if not all(k in ests for k in keys):
            pytest.skip("sparse run: not all corridor lights identified")
        truth = [city.truth_at(k[0], k[1], 5400.0) for k in keys]
        est = [ests[k].schedule for k in keys]
        if any(abs(e.cycle_s - t.cycle_s) > 3 for e, t in zip(est, truth)):
            pytest.skip("cycle not locked in this run")
        bw_truth = progression_bandwidth(truth[0], truth[1], 45.0)
        bw_est = progression_bandwidth(est[0], est[1], 45.0)
        assert bw_est == pytest.approx(bw_truth, abs=0.25)
