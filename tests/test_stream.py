"""The streaming identification subsystem (``repro.stream``).

Covers the mutation layer (``StreamStore.append`` / targeted cache
invalidation in ``PartitionStore.append_partitions``), the session layer
(result caching, ``IncrementalUpdate`` accounting, online plan-change
detection), the ``backend="stream"`` seam in ``identify_many``, the
per-chunk telemetry in ``RunReport``, and the replay harness.  The
bit-for-bit replay-parity oracle itself lives in
``tests/test_stream_parity.py``.
"""

import json

import numpy as np
import pytest

from repro.core import PipelineConfig, identify_many
from repro.core.pipeline import BACKENDS
from repro.matching.partition import LightPartition
from repro.obs import ChunkStats, RunReport
from repro.scenario import synthetic_lights, synthetic_partitions
from repro.stream import (
    StreamSession,
    StreamStore,
    split_by_time,
    split_random,
    subset_partition,
)
from repro.trace.store import PartitionStore


def _halves(partitions):
    """The fixture city split into two time halves."""
    t1 = max(float(p.trace.t.max()) for p in partitions.values())
    return split_by_time(partitions, [0.0, t1 / 2.0, t1 + 1.0])


def _corrupt(part):
    """A structurally broken clone (dist column of the wrong length)."""
    return LightPartition(
        part.intersection_id, part.approach, part.trace,
        part.segment_id, np.empty(3),
    )


class TestChunkHelpers:
    def test_split_by_time_partitions_all_rows(self, partitions):
        first, second = _halves(partitions)
        total = sum(len(p.trace) for p in partitions.values())
        split = sum(len(p.trace) for c in (first, second) for p in c.values())
        assert split == total

    def test_split_by_time_rejects_single_edge(self, partitions):
        with pytest.raises(ValueError, match="two boundaries"):
            split_by_time(partitions, [0.0])

    def test_split_random_partitions_all_rows(self, partitions, rng):
        chunks = split_random(partitions, 5, rng=rng)
        total = sum(len(p.trace) for p in partitions.values())
        split = sum(len(p.trace) for c in chunks for p in c.values())
        assert split == total

    def test_split_random_rejects_zero_chunks(self, partitions, rng):
        with pytest.raises(ValueError, match="n_chunks"):
            split_random(partitions, 0, rng=rng)

    def test_subset_partition_keeps_columns_aligned(self, partitions):
        key = sorted(partitions)[0]
        part = partitions[key]
        rows = np.arange(len(part.trace))[::2]
        piece = subset_partition(part, rows)
        np.testing.assert_array_equal(piece.trace.t, part.trace.t[rows])
        np.testing.assert_array_equal(piece.segment_id, np.asarray(part.segment_id)[rows])
        np.testing.assert_array_equal(
            piece.dist_to_stopline_m, np.asarray(part.dist_to_stopline_m)[rows]
        )


class TestAppendPartitions:
    def test_chunked_build_matches_one_shot_bitwise(self, partitions):
        one_shot = PartitionStore.from_partitions(partitions)
        store = PartitionStore.from_partitions({})
        for chunk in _halves(partitions):
            store.append_partitions(chunk)
        assert sorted(store) == sorted(one_shot)
        for key in one_shot:
            a, b = store.partition(key), one_shot.partition(key)
            np.testing.assert_array_equal(a.trace.t, b.trace.t)
            np.testing.assert_array_equal(a.trace.taxi_id, b.trace.taxi_id)
            np.testing.assert_array_equal(
                a.dist_to_stopline_m, b.dist_to_stopline_m
            )

    def test_append_invalidates_only_touched_lights(self, partitions):
        first, second = _halves(partitions)
        store = PartitionStore.from_partitions(first)
        keys = sorted(store)
        for key in keys:
            store.stops(key)  # populate the per-light caches
        touched_key = keys[0]
        touched = store.append_partitions({touched_key: second[touched_key]})
        assert touched == frozenset({touched_key})
        assert touched_key not in store._stops
        for key in keys[1:]:
            assert key in store._stops

    def test_empty_chunk_is_a_noop(self, partitions):
        store = PartitionStore.from_partitions(partitions)
        key = sorted(store)[0]
        store.stops(key)
        empty = subset_partition(partitions[key], np.empty(0, dtype=int))
        touched = store.append_partitions({key: empty})
        assert touched == frozenset()
        assert key in store._stops, "an empty chunk must not damage caches"

    def test_append_new_light(self, partitions):
        first, second = _halves(partitions)
        new_key = sorted(partitions)[0]
        base = {k: v for k, v in first.items() if k != new_key}
        store = PartitionStore.from_partitions(base)
        touched = store.append_partitions({new_key: first[new_key]})
        assert touched == frozenset({new_key})
        assert new_key in store
        np.testing.assert_array_equal(
            store.partition(new_key).trace.t, first[new_key].trace.t
        )

    def test_irregular_chunk_quarantines_only_its_light(self, partitions):
        store = PartitionStore.from_partitions(partitions)
        keys = sorted(store)
        bad, good = keys[0], keys[1]
        store.append_partitions({bad: _corrupt(partitions[bad])})
        assert not store.is_regular(bad)
        assert store.is_regular(good)
        np.testing.assert_array_equal(
            store.partition(good).trace.t, partitions[good].trace.t
        )

    def test_invalidate_light_purges_memo_entries(self, partitions):
        store = PartitionStore.from_partitions(partitions)
        key, other = sorted(store)[0], sorted(store)[1]
        store.cache[("grid", key, 5400.0)] = "stale"
        store.cache[("grid", other, 5400.0)] = "fresh"
        store.stops(key)
        store.invalidate_light(key, derived_only=True)
        assert ("grid", key, 5400.0) not in store.cache
        assert ("grid", other, 5400.0) in store.cache
        assert key in store._stops, "derived_only must keep the raw caches"


class TestStreamStore:
    def test_dirty_includes_perpendicular_partner(self, partitions):
        first, second = _halves(partitions)
        stream = StreamStore(first)
        (iid, approach) = sorted(first)[0]
        partner = (iid, "EW" if approach == "NS" else "NS")
        ingest = stream.append({(iid, approach): second[(iid, approach)]})
        assert ingest.touched == frozenset({(iid, approach)})
        assert ingest.dirty == frozenset({(iid, approach), partner})

    def test_versions_bump_only_for_dirty(self, partitions):
        first, second = _halves(partitions)
        stream = StreamStore(first)
        key = sorted(first)[0]
        before = {k: stream.version(k) for k in stream.store}
        ingest = stream.append({key: second[key]})
        for k in stream.store:
            expect = before[k] + 1 if k in ingest.dirty else before[k]
            assert stream.version(k) == expect, k

    def test_ingest_accounting(self, partitions):
        stream = StreamStore()
        first, second = _halves(partitions)
        ingest = stream.append(first)
        assert ingest.n_records == sum(len(p.trace) for p in first.values())
        assert ingest.t_max == max(
            float(p.trace.t.max()) for p in first.values()
        )
        empty = stream.append({})
        assert empty.n_records == 0 and empty.t_max is None
        assert empty.touched == frozenset() and empty.dirty == frozenset()


class TestStreamSession:
    def test_one_shot_matches_batched(self, partitions):
        session = StreamSession(monitor=False)
        session.ingest(dict(partitions), refresh=False)
        est_s, fail_s = session.evaluate(5400.0)
        est_b, fail_b = identify_many(partitions, 5400.0, backend="batched")
        assert sorted(est_s) == sorted(est_b)
        assert sorted(fail_s) == sorted(fail_b)
        for key in est_b:
            assert est_s[key].cycle_s == est_b[key].cycle_s

    def test_evaluate_serves_cache_when_clean(self, partitions):
        session = StreamSession(monitor=False)
        session.ingest(dict(partitions), refresh=False)
        session.evaluate(5400.0)
        assert session._stale_keys(5400.0, None) == []
        est1, _ = session.evaluate(5400.0)
        est2, _ = session.evaluate(5400.0)
        key = sorted(est1)[0]
        assert est1[key] is est2[key], "clean lights must be served from cache"

    def test_new_time_spot_marks_everything_stale(self, partitions):
        session = StreamSession(monitor=False)
        session.ingest(dict(partitions), refresh=False)
        session.evaluate(5400.0)
        assert sorted(session._stale_keys(4500.0, None)) == sorted(session.store)

    def test_ingest_refreshes_only_dirty(self, partitions):
        first, second = _halves(partitions)
        session = StreamSession(monitor=False)
        # pin the evaluation time so the second ingest cannot mark every
        # light stale merely by moving "now" forward
        session.ingest(first, at_time=5400.0)
        key = sorted(second)[0]
        update = session.ingest({key: second[key]}, at_time=5400.0)
        partner = (key[0], "EW" if key[1] == "NS" else "NS")
        assert update.touched == frozenset({key})
        assert update.refreshed == frozenset({key, partner})
        # the update exposes the full current view, not just the refresh
        assert set(update.estimates) | set(update.failures) == set(session.store)

    def test_update_at_time_defaults_to_chunk_t_max(self, partitions):
        first, _second = _halves(partitions)
        session = StreamSession(monitor=False)
        update = session.ingest(first)
        assert update.at_time == max(
            float(p.trace.t.max()) for p in first.values()
        )

    def test_identify_many_stream_backend_bitwise(self, partitions):
        ref = identify_many(partitions, 5400.0, backend="batched")
        out = identify_many(partitions, 5400.0, backend="stream")
        assert sorted(out[0]) == sorted(ref[0])
        assert sorted(out[1]) == sorted(ref[1])
        for key in ref[0]:
            assert out[0][key].cycle_s == ref[0][key].cycle_s
            assert out[0][key].schedule.offset_s == ref[0][key].schedule.offset_s

    def test_stream_listed_as_backend(self):
        assert "stream" in BACKENDS


class TestCoherenceAudit:
    """Regression tests from the whole-program analyzer audit.

    The analyzer (REP007/REP008) proves these contracts structurally;
    the tests here pin the *runtime* behaviour the structure is meant
    to guarantee: partner invalidation stays derived-only, and the
    session result cache keys on both data version and spot time.
    """

    def test_partner_of_is_an_involution(self, partitions):
        from repro.matching.partition import partner_of

        for key in sorted(partitions):
            partner = partner_of(key)
            assert partner[0] == key[0]
            assert partner[1] != key[1]
            assert partner_of(partner) == key

    def test_ingest_keeps_partner_views_drops_partner_memo(self, partitions):
        first, second = _halves(partitions)
        stream = StreamStore(first)
        store = stream.store
        key = sorted(first)[0]
        partner = (key[0], "EW" if key[1] == "NS" else "NS")
        # warm the partner's extraction caches and both lights' memos
        store.partition(partner)
        store.stops(partner)
        store.cache[("grid", key, 5400.0)] = "stale"
        store.cache[("grid", partner, 5400.0)] = "mirrored"
        store.stops(key)
        stream.append({key: second[key]})
        # touched light: fully invalidated (views and memo both gone)
        assert key not in store._stops
        assert ("grid", key, 5400.0) not in store.cache
        # partner: derived-only — memo purged, extractions survive
        assert ("grid", partner, 5400.0) not in store.cache
        assert partner in store._partitions
        assert partner in store._stops

    def test_session_cache_keys_on_data_version(self, partitions):
        first, second = _halves(partitions)
        session = StreamSession(monitor=False)
        session.ingest(first, refresh=False)
        session.evaluate(5400.0)
        key = sorted(second)[0]
        partner = (key[0], "EW" if key[1] == "NS" else "NS")
        session.stream.append({key: second[key]})
        # same at_time, bumped version: exactly the dirty pair is stale
        assert sorted(session._stale_keys(5400.0, None)) == sorted(
            {key, partner}
        )

    def test_clean_lights_keep_identical_results_across_refresh(
        self, partitions
    ):
        first, second = _halves(partitions)
        session = StreamSession(monitor=False)
        session.ingest(first, refresh=False)
        est1, _ = session.evaluate(5400.0)
        key = sorted(second)[0]
        partner = (key[0], "EW" if key[1] == "NS" else "NS")
        session.stream.append({key: second[key]})
        est2, _ = session.evaluate(5400.0)
        for k in est1:
            if k in (key, partner):
                continue
            assert est1[k] is est2[k], (
                "a light whose data and spot time are unchanged must be "
                "served the cached estimate object"
            )

    def test_version_bump_during_refresh_keeps_entry_stale(
        self, partitions, monkeypatch
    ):
        """The snapshot-isolation invariant of the session cache.

        An append landing while a refresh's kernels run (the serving
        layer's writer racing an executor-offloaded refresh) must leave
        the refreshed entries *stale*: they were computed from the old
        rows, so stamping them with the bumped version would let the
        next evaluate serve mixed-version results from cache.
        """
        from repro.core import batch as batch_mod

        first, second = _halves(partitions)
        session = StreamSession(monitor=False)
        session.ingest(first, refresh=False)
        real = batch_mod.identify_batch
        raced = {"done": False}

        def racing(store, at_time, **kwargs):
            # Identify on the rows as they are now, then land a
            # concurrent append before the session stamps its entries.
            result = real(store, at_time, **kwargs)
            if not raced["done"]:
                raced["done"] = True
                session.stream.append(second)
            return result

        monkeypatch.setattr(batch_mod, "identify_batch", racing)
        session.evaluate(5400.0)
        # every entry was computed from pre-append rows and must carry
        # the pre-append version: all stale, none fresh-but-torn
        assert sorted(session._stale_keys(5400.0, None)) == sorted(partitions)
        # the next evaluate re-identifies and reconverges bit-for-bit
        # with a one-shot batched run over the full data
        est, fail = session.evaluate(5400.0)
        ref_est, ref_fail, _ = real(
            PartitionStore.from_partitions(partitions), 5400.0
        )
        assert sorted(est) == sorted(ref_est)
        assert sorted(fail) == sorted(ref_fail)
        for k in ref_est:
            a, b = est[k], ref_est[k]
            assert (a.cycle_s, a.red_s, a.green_s, a.schedule.offset_s) == (
                b.cycle_s, b.red_s, b.green_s, b.schedule.offset_s
            )


class TestOnlineMonitor:
    @pytest.mark.slow
    def test_plan_change_detected_online(self):
        lights = synthetic_lights(2, seed=4, switch_at_s=7200.0, switch_factor=1.3)
        parts = synthetic_partitions(lights, 0.0, 14400.0, seed=4)
        edges = list(np.arange(0.0, 14401.0, 600.0))
        session = StreamSession(config=PipelineConfig(window_s=1800.0))
        detected = {}
        for chunk in split_by_time(parts, edges):
            update = session.ingest(chunk)
            for key, changes in update.plan_changes.items():
                detected.setdefault(key, []).extend(changes)
        assert sorted(detected) == sorted(parts), (
            "the plan switch must be detected online for every light"
        )
        for key, changes in detected.items():
            truth = next(lt for lt in lights if lt.key == key)
            # the first post-switch window blends both plans, so allow
            # ~10% on the new cycle; timing must land near the switch
            hits = [
                ch for ch in changes
                if abs(ch.new_cycle_s - truth.cycle2_s) < 0.1 * truth.cycle2_s
                and 6600.0 <= ch.at_time <= 9600.0
            ]
            assert hits, f"{key}: no detected change matches the true new plan"

    def test_monitor_series_accumulates(self, partitions):
        session = StreamSession()
        for chunk in _halves(partitions):
            session.ingest(chunk)
        key = sorted(session.store)[0]
        series = session.monitor_series(key)
        assert len(series) == 2
        assert np.all(np.diff(series.t) > 0)


class TestChunkTelemetry:
    def test_report_records_chunk_stats(self, partitions):
        report = RunReport()
        session = StreamSession(monitor=False, report=report)
        chunks = _halves(partitions)
        for chunk in chunks:
            session.ingest(chunk)
        assert len(report.chunks) == len(chunks)
        assert [c.chunk_index for c in report.chunks] == [0, 1]
        assert sum(c.n_records for c in report.chunks) == sum(
            len(p.trace) for p in partitions.values()
        )
        assert all(c.wall_s >= 0.0 for c in report.chunks)

    def test_report_roundtrip_with_chunks(self):
        report = RunReport()
        report.record_chunk(ChunkStats(0, 100, 4, 6, 6, 0.25))
        d = report.to_dict()
        clone = RunReport.from_dict(json.loads(json.dumps(d)))
        assert clone.chunks == report.chunks

    def test_report_without_chunks_keeps_v1_shape(self):
        assert "chunks" not in RunReport().to_dict()


class TestEvaluateReplay:
    def test_replay_scores_every_light_per_chunk(self, city, partitions):
        from repro.eval import evaluate_replay

        def truth(iid, approach, at_time):
            return city.truth_at(iid, approach, at_time)

        report = RunReport()
        edges = [0.0, 2700.0, 5400.0]
        result = evaluate_replay(
            partitions, truth, edges, report=report
        )
        assert len(result) == (len(edges) - 1) * len(partitions)
        # early windows may be sparse; the final, full-window estimates
        # must be tight for every light
        final = [
            s for s in result.samples if s.at_time == edges[-1] and s.errors
        ]
        assert len(final) == len(partitions)
        assert max(abs(s.errors.cycle_s) for s in final) < 5.0
        assert len(report.chunks) == len(edges) - 1
