"""Unit + property tests for repro.trace.records."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.trace.records import (
    BODY_COLORS,
    TaxiRecord,
    TraceArrays,
    plate_of,
    sim_card_of,
)


def small_trace(n=6):
    rng = np.random.default_rng(0)
    return TraceArrays(
        taxi_id=rng.integers(10, 15, n),
        t=rng.uniform(0, 1000, n),
        lon=114.05 + rng.uniform(-0.01, 0.01, n),
        lat=22.54 + rng.uniform(-0.01, 0.01, n),
        speed_kmh=rng.uniform(0, 60, n),
        heading_deg=rng.uniform(0, 360, n),
        passenger=rng.uniform(size=n) < 0.5,
    )


class TestConstruction:
    def test_defaults_filled(self):
        tr = TraceArrays([1], [0.0], [114.0], [22.5], [30.0])
        assert tr.gps_ok.all() and not tr.overspeed.any() and not tr.passenger.any()
        assert tr.device_id[0] == 700_001

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TraceArrays([1, 2], [0.0], [114.0], [22.5], [30.0])

    def test_empty(self):
        assert len(TraceArrays.empty()) == 0


class TestSelection:
    def test_subset_by_mask(self):
        tr = small_trace(10)
        sub = tr.subset(tr.speed_kmh > 30)
        assert np.all(sub.speed_kmh > 30)

    def test_sorted_by_time(self):
        tr = small_trace(20)
        s = tr.sorted_by_time()
        assert np.all(np.diff(s.t) >= 0)
        assert len(s) == len(tr)

    def test_sorted_by_taxi_then_time(self):
        s = small_trace(30).sorted_by_taxi_then_time()
        key = s.taxi_id * 1e7 + s.t
        assert np.all(np.diff(key) >= 0)

    def test_time_window(self):
        tr = small_trace(50)
        w = tr.time_window(100.0, 500.0)
        assert np.all((w.t >= 100.0) & (w.t < 500.0))

    def test_concat(self):
        a, b = small_trace(5), small_trace(7)
        c = TraceArrays.concat([a, b])
        assert len(c) == 12
        np.testing.assert_array_equal(c.t[:5], a.t)

    def test_concat_empty(self):
        assert len(TraceArrays.concat([])) == 0
        assert len(TraceArrays.concat([TraceArrays.empty()])) == 0


class TestRecordConversion:
    def test_roundtrip_through_records(self):
        tr = small_trace(8)
        back = TraceArrays.from_records(tr.to_records())
        np.testing.assert_array_equal(back.taxi_id, tr.taxi_id)
        np.testing.assert_allclose(back.t, tr.t)
        np.testing.assert_allclose(back.lon, tr.lon)
        np.testing.assert_array_equal(back.passenger, tr.passenger)

    def test_record_fields(self):
        tr = small_trace(1)
        rec = tr.to_records()[0]
        assert isinstance(rec, TaxiRecord)
        assert rec.plate == plate_of(int(tr.taxi_id[0]))
        assert rec.sim_card == sim_card_of(int(tr.taxi_id[0]))
        assert rec.color in BODY_COLORS

    def test_from_records_empty(self):
        assert len(TraceArrays.from_records([])) == 0


@given(
    taxi_ids=st.lists(st.integers(0, 99_999), min_size=1, max_size=30),
)
@settings(max_examples=30)
def test_property_roundtrip_preserves_ids(taxi_ids):
    n = len(taxi_ids)
    tr = TraceArrays(
        taxi_id=taxi_ids,
        t=np.arange(n, dtype=float),
        lon=np.full(n, 114.05),
        lat=np.full(n, 22.54),
        speed_kmh=np.zeros(n),
    )
    back = TraceArrays.from_records(tr.to_records())
    np.testing.assert_array_equal(back.taxi_id, tr.taxi_id)
