"""Whole-program analyzer tests: call graph, effect fixpoint, REP007–REP011.

Synthetic trees are linted in memory through ``lint_sources`` (engine
semantics) or written to ``tmp_path`` and driven through the CLI
``main`` (exit codes, SARIF, ``--diff``, ``--fix-unused``).  Suppression
comments inside source-string fixtures are built from ``ALLOW`` so this
file itself never contains a live suppression.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import textwrap
from pathlib import Path

import pytest

from repro.analysis.callgraph import build_callgraph, module_path
from repro.analysis.cli import main
from repro.analysis.effects import build_program
from repro.analysis.engine import (
    iter_python_files,
    lint_sources,
    run_paths,
    strip_suppressions,
    to_sarif,
)
from repro.analysis.rules import PROGRAM_RULES, StrictFrontierRule

ALLOW = "# repro" + ": allow"

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Synthetic library paths: the store-rule fixtures must live where
#: their suppressions are sanctioned and their class names are typed.
STORE = "src/repro/trace/store.py"
STREAM = "src/repro/stream/ingest.py"
CORE = "src/repro/core/kernels.py"
PARITY = "src/repro/core/batch.py"
LIB = "src/repro/eval/driver.py"


def _src(text: str) -> str:
    return textwrap.dedent(text).lstrip("\n")


def _rules_of(findings):
    return [f.rule for f in findings]


# ----------------------------------------------------------------------
# Call graph construction
# ----------------------------------------------------------------------


class TestCallGraph:
    def test_direct_call_edge(self):
        graph = build_callgraph(
            [
                (
                    CORE,
                    _src(
                        """
                        def helper(x):
                            return x + 1

                        def entry(x):
                            return helper(x)
                        """
                    ),
                )
            ]
        )
        assert "repro.core.kernels.helper" in graph.callees_of(
            "repro.core.kernels.entry"
        )
        assert "repro.core.kernels.entry" in graph.callers_of(
            "repro.core.kernels.helper"
        )

    def test_method_call_via_annotated_param(self):
        graph = build_callgraph(
            [
                (
                    CORE,
                    _src(
                        """
                        class Box:
                            def get(self):
                                return 1

                        def use(b: Box):
                            return b.get()
                        """
                    ),
                )
            ]
        )
        assert "repro.core.kernels.Box.get" in graph.callees_of(
            "repro.core.kernels.use"
        )

    def test_constructor_then_method(self):
        graph = build_callgraph(
            [
                (
                    CORE,
                    _src(
                        """
                        class Box:
                            def get(self):
                                return 1

                        def use():
                            b = Box()
                            return b.get()
                        """
                    ),
                )
            ]
        )
        callees = graph.callees_of("repro.core.kernels.use")
        assert "repro.core.kernels.Box.__init__" in callees or callees
        assert "repro.core.kernels.Box.get" in callees

    def test_relative_import_resolution(self):
        graph = build_callgraph(
            [
                (
                    "src/repro/core/batch.py",
                    _src(
                        """
                        from ..lights.controller import helper

                        def kernel(x):
                            return helper(x)
                        """
                    ),
                ),
                (
                    "src/repro/lights/controller.py",
                    _src(
                        """
                        def helper(x):
                            return x
                        """
                    ),
                ),
            ]
        )
        assert "repro.lights.controller.helper" in graph.callees_of(
            "repro.core.batch.kernel"
        )

    def test_reachability(self):
        graph = build_callgraph(
            [
                (
                    CORE,
                    _src(
                        """
                        def a():
                            return b()

                        def b():
                            return c()

                        def c():
                            return 1

                        def island():
                            return 2
                        """
                    ),
                )
            ]
        )
        reach = graph.reachable_from(["repro.core.kernels.a"])
        assert "repro.core.kernels.c" in reach
        assert "repro.core.kernels.island" not in reach

    def test_module_path_normalization(self):
        assert module_path("/x/y/src/repro/core/batch.py") == "repro/core/batch.py"
        assert module_path("tests/test_foo.py") == "tests/test_foo.py"


# ----------------------------------------------------------------------
# Effect fixpoint convergence
# ----------------------------------------------------------------------


class TestFixpoint:
    def test_self_recursion_terminates(self):
        program = build_program(
            [
                (
                    CORE,
                    _src(
                        """
                        def f(n):
                            if n == 0:
                                return set()
                            return f(n - 1)
                        """
                    ),
                )
            ]
        )
        assert program.effects["repro.core.kernels.f"].returns_unordered

    def test_mutual_recursion_terminates_and_propagates(self):
        program = build_program(
            [
                (
                    STORE,
                    _src(
                        """
                        class PartitionStore:
                            def __init__(self):
                                self._columns = {}

                            def ping(self, key, rows, depth):
                                if depth:
                                    return self.pong(key, rows, depth - 1)
                                self._columns[key] = rows

                            def pong(self, key, rows, depth):
                                return self.ping(key, rows, depth)
                        """
                    ),
                )
            ]
        )
        ping = program.effects["repro.trace.store.PartitionStore.ping"]
        pong = program.effects["repro.trace.store.PartitionStore.pong"]
        assert ping.writes_data and pong.writes_data

    def test_mutated_param_propagates_through_calls(self):
        program = build_program(
            [
                (
                    CORE,
                    _src(
                        """
                        def inner(acc):
                            acc.append(1)

                        def outer(acc):
                            inner(acc)
                        """
                    ),
                )
            ]
        )
        assert "acc" in program.effects["repro.core.kernels.outer"].mutated_params


# ----------------------------------------------------------------------
# REP007 — store cache coherence
# ----------------------------------------------------------------------


REP007_FIRE = _src(
    """
    class PartitionStore:
        def __init__(self):
            self._columns = {}
            self._partitions = {}
            self.cache = {}

        def invalidate_light(self, key):
            self._partitions.pop(key, None)
            stale = [ck for ck in self.cache if ck[1] == key]
            for ck in stale:
                del self.cache[ck]

        def append(self, key, rows):
            self._columns[key] = rows
    """
)

REP007_CLEAN = REP007_FIRE.replace(
    "        self._columns[key] = rows",
    "        self._columns[key] = rows\n        self.invalidate_light(key)",
)


# ----------------------------------------------------------------------
# Async topology: coroutines, awaits, task spawns, offload seams
# ----------------------------------------------------------------------

ASYNC_TOPOLOGY = _src(
    """
    import asyncio
    import time

    def heavy(x):
        time.sleep(x)
        return x

    def wrapper(x):
        return heavy(x)

    class Server:
        def start(self):
            self._task = asyncio.get_running_loop().create_task(
                self._writer()
            )

        async def _writer(self):
            while True:
                await asyncio.sleep(0)
                self._state = 1

        async def offloaded(self):
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(None, heavy, 1)

        async def inline(self):
            return wrapper(1)
    """
)


class TestAsyncTopology:
    def _program(self):
        return build_program([(LIB, ASYNC_TOPOLOGY)])

    def test_async_def_detection(self):
        graph = self._program().graph
        assert graph.functions["repro.eval.driver.Server._writer"].is_async
        assert not graph.functions["repro.eval.driver.heavy"].is_async

    def test_await_points_recorded(self):
        graph = self._program().graph
        writer = graph.functions["repro.eval.driver.Server._writer"]
        assert any("sleep" in site.detail for site in writer.awaits)

    def test_writer_task_seeded_from_create_task(self):
        program = self._program()
        assert program.writer_roots == {"repro.eval.driver.Server._writer"}
        assert "repro.eval.driver.Server._writer" in program.writer_reachable

    def test_spawn_is_not_a_call_edge_but_is_tracked(self):
        graph = self._program().graph
        spawns = graph.task_spawns["repro.eval.driver.Server.start"]
        assert spawns == {"repro.eval.driver.Server._writer"}

    def test_offload_reference_recognized(self):
        graph = self._program().graph
        offloaded = graph.functions["repro.eval.driver.Server.offloaded"]
        refs = {(r.target, r.offload) for r in offloaded.refs}
        assert ("repro.eval.driver.heavy", True) in refs

    def test_blocking_taint_propagates_through_sync_calls(self):
        program = self._program()
        assert program.effects["repro.eval.driver.heavy"].may_block
        wrapper = program.effects["repro.eval.driver.wrapper"]
        assert wrapper.may_block
        assert wrapper.block_chain[0] == "repro.eval.driver.heavy"

    def test_offload_does_not_taint_the_coroutine(self):
        program = self._program()
        summary = program.effects["repro.eval.driver.Server.offloaded"]
        assert not summary.loop_block_anchors

    def test_inline_blocking_call_is_anchored(self):
        program = self._program()
        summary = program.effects["repro.eval.driver.Server.inline"]
        assert len(summary.loop_block_anchors) == 1
        assert "wrapper" in summary.loop_block_anchors[0].detail

    def test_reachable_with_refs_follows_references(self):
        graph = self._program().graph
        closure = graph.reachable_with_refs(["repro.eval.driver.Server.offloaded"])
        assert "repro.eval.driver.heavy" in closure


class TestStoreCoherence:
    def test_uninvalidated_write_fires(self):
        findings = lint_sources([(STORE, REP007_FIRE)])
        assert _rules_of(findings) == ["REP007"]
        assert "append" in findings[0].message

    def test_invalidated_write_is_clean(self):
        findings = lint_sources([(STORE, REP007_CLEAN)])
        assert findings == []

    def test_write_through_helper_charged_to_public_entry(self):
        source = _src(
            """
            class PartitionStore:
                def __init__(self):
                    self._columns = {}

                def _splice(self, key, rows):
                    self._columns[key] = rows

                def append(self, key, rows):
                    self._splice(key, rows)
            """
        )
        findings = lint_sources([(STORE, source)])
        assert _rules_of(findings) == ["REP007"]
        assert "append" in findings[0].message
        assert "_splice" in findings[0].message

    def test_memo_fill_with_non_tuple_key_fires(self):
        source = _src(
            """
            class PartitionStore:
                def __init__(self):
                    self.cache = {}

                def remember(self, key, value):
                    self.cache[key] = value
            """
        )
        findings = lint_sources([(STORE, source)])
        assert _rules_of(findings) == ["REP007"]
        assert "cache" in findings[0].message

    def test_memo_fill_with_tuple_key_is_clean(self):
        source = _src(
            """
            class PartitionStore:
                def __init__(self):
                    self.cache = {}

                def remember(self, key, value):
                    self.cache[("grid", key, 60)] = value
            """
        )
        assert lint_sources([(STORE, source)]) == []

    def test_suppressed_seam_does_not_propagate(self):
        source = _src(
            f"""
            class PartitionStore:
                def __init__(self):
                    self._columns = {{}}

                def _swap(self, columns):
                    self._columns = columns  {ALLOW}[REP007]

                def flip(self, columns):
                    self._swap(columns)
            """
        )
        assert lint_sources([(STORE, source)]) == []

    def test_rep007_suppression_outside_store_files_is_flagged(self):
        source = _src(
            f"""
            class PartitionStore:
                def __init__(self):
                    self._columns = {{}}

                def flip(self, columns):
                    self._columns = columns  {ALLOW}[REP007]
            """
        )
        findings = lint_sources([(LIB, source)])
        assert "REP007" in _rules_of(findings)
        assert any("sanctioned" in f.message for f in findings)

    def test_deleting_invalidate_light_in_real_store_fires(self):
        """The acceptance-criteria canary, against the real tree."""
        files = []
        for path in iter_python_files([str(REPO_ROOT / "src")]):
            source = Path(path).read_text(encoding="utf-8")
            rel = os.path.relpath(path, REPO_ROOT)
            if rel == os.path.join("src", "repro", "trace", "store.py"):
                assert "self.invalidate_light(key)" in source
                source = source.replace("self.invalidate_light(key)", "pass")
            files.append((rel, source))
        findings = lint_sources(files)
        rep007 = [f for f in findings if f.rule == "REP007"]
        assert rep007, "removing invalidate_light must trip REP007"
        assert any("append_partitions" in f.message for f in rep007)

    def test_spill_bypassing_swap_backing_fires(self):
        """Spill canary: writing the backing fields directly instead of
        going through the sanctioned ``_swap_backing`` trips REP007."""
        files = []
        sanctioned = "self._swap_backing(None, mmap_dir)  # reload lazily, memory-mapped"
        for path in iter_python_files([str(REPO_ROOT / "src")]):
            source = Path(path).read_text(encoding="utf-8")
            rel = os.path.relpath(path, REPO_ROOT)
            if rel == os.path.join("src", "repro", "trace", "store.py"):
                assert sanctioned in source
                source = source.replace(
                    sanctioned,
                    "self._columns = None\n        self._mmap_dir = mmap_dir",
                )
            files.append((rel, source))
        findings = lint_sources(files)
        rep007 = [f for f in findings if f.rule == "REP007"]
        assert rep007, "bypassing _swap_backing in spill_to must trip REP007"
        assert any("spill_to" in f.message for f in rep007)


# ----------------------------------------------------------------------
# REP008 — worker escapes and shared fixtures
# ----------------------------------------------------------------------


class TestWorkerEscape:
    def test_mutation_after_pmap_fires(self):
        source = _src(
            """
            from repro.parallel.pool import pmap

            def run(work, items, shared):
                out = pmap(work, items, common=shared)
                shared["k"] = 1
                return out
            """
        )
        findings = lint_sources([(LIB, source)])
        assert _rules_of(findings) == ["REP008"]
        assert "shared" in findings[0].message

    def test_mutation_before_pmap_is_clean(self):
        source = _src(
            """
            from repro.parallel.pool import pmap

            def run(work, items, shared):
                shared["k"] = 1
                return pmap(work, items, common=shared)
            """
        )
        assert lint_sources([(LIB, source)]) == []

    def test_mutation_through_callee_fires(self):
        source = _src(
            """
            from repro.parallel.pool import pmap

            def poke(obj):
                obj.append(1)

            def run(work, items):
                out = pmap(work, items)
                poke(items)
                return out
            """
        )
        findings = lint_sources([(LIB, source)])
        assert _rules_of(findings) == ["REP008"]

    def test_alias_mutation_fires(self):
        source = _src(
            """
            from repro.parallel.pool import pmap

            def run(work, part):
                out = pmap(work, part)
                sub = part.trace
                sub.append(1)
                return out
            """
        )
        findings = lint_sources([(LIB, source)])
        assert _rules_of(findings) == ["REP008"]

    def test_shared_fixture_mutation_fires_in_tests_tree(self):
        conftest = _src(
            """
            import pytest

            @pytest.fixture(scope="session")
            def city():
                return {"lights": []}
            """
        )
        test = _src(
            """
            def test_poke(city):
                city["lights"].append(1)
            """
        )
        findings = lint_sources(
            [("tests/conftest.py", conftest), ("tests/test_poke.py", test)]
        )
        assert _rules_of(findings) == ["REP008"]
        assert "session/module-scoped fixture" in findings[0].message

    def test_function_scoped_fixture_mutation_is_clean(self):
        conftest = _src(
            """
            import pytest

            @pytest.fixture
            def city():
                return {"lights": []}
            """
        )
        test = _src(
            """
            def test_poke(city):
                city["lights"] = [1]
            """
        )
        findings = lint_sources(
            [("tests/conftest.py", conftest), ("tests/test_poke.py", test)]
        )
        assert findings == []


# ----------------------------------------------------------------------
# REP009 — cross-call set-order taint
# ----------------------------------------------------------------------


class TestCrossCallSetOrder:
    def test_unordered_return_reduced_in_caller_fires(self):
        source = _src(
            """
            def gather():
                return set([1.0, 2.0])

            def total():
                vals = gather()
                return sum(vals)
            """
        )
        findings = lint_sources([(CORE, source)])
        assert _rules_of(findings) == ["REP009"]
        assert "callee" in findings[0].message

    def test_tainted_arg_into_sink_param_fires(self):
        source = _src(
            """
            def reduce_all(xs):
                return sum(xs)

            def caller():
                s = {1.0, 2.0}
                return reduce_all(s)
            """
        )
        findings = lint_sources([(CORE, source)])
        assert _rules_of(findings) == ["REP009"]
        assert "reduce_all" in findings[0].message

    def test_sorted_at_boundary_is_clean(self):
        source = _src(
            """
            def gather():
                return set([1.0, 2.0])

            def total():
                vals = sorted(gather())
                return sum(vals)
            """
        )
        assert lint_sources([(CORE, source)]) == []

    def test_local_set_reduction_stays_rep006(self):
        source = _src(
            """
            def total():
                return sum({1.0, 2.0})
            """
        )
        findings = lint_sources([(CORE, source)])
        assert _rules_of(findings) == ["REP006"]


# ----------------------------------------------------------------------
# REP010 — strict-typing frontier
# ----------------------------------------------------------------------


class TestStrictFrontier:
    def test_parity_call_into_nonstrict_module_fires(self):
        files = [
            (
                PARITY,
                _src(
                    """
                    from ..sim.queueing import helper

                    def kernel(x):
                        return helper(x)
                    """
                ),
            ),
            (
                "src/repro/sim/queueing.py",
                _src(
                    """
                    def helper(x):
                        return x
                    """
                ),
            ),
        ]
        findings = lint_sources(files)
        assert _rules_of(findings) == ["REP010"]
        assert "repro.sim.queueing" in findings[0].message

    def test_parity_call_into_strict_module_is_clean(self):
        files = [
            (
                PARITY,
                _src(
                    """
                    from .cycle import helper

                    def kernel(x):
                        return helper(x)
                    """
                ),
            ),
            (
                "src/repro/core/cycle.py",
                _src(
                    """
                    def helper(x):
                        return x
                    """
                ),
            ),
        ]
        assert lint_sources(files) == []

    def test_unreachable_nonstrict_call_is_clean(self):
        files = [
            (
                LIB,
                _src(
                    """
                    from ..lights.controller import helper

                    def driver(x):
                        return helper(x)
                    """
                ),
            ),
            (
                "src/repro/lights/controller.py",
                _src(
                    """
                    def helper(x):
                        return x
                    """
                ),
            ),
        ]
        assert lint_sources(files) == []

    def test_strict_modules_mirror_pyproject(self):
        """REP010's frontier and mypy's strict tier must move together."""
        text = (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
        match = re.search(
            r"module = \[([^\]]*)\]\s*\ndisallow_untyped_defs = true",
            text,
        )
        assert match is not None, "strict mypy override block not found"
        entries = re.findall(r'"([^"]+)"', match.group(1))
        expected = set()
        for entry in entries:
            expected.add(entry)
            if entry.endswith(".*"):
                expected.add(entry[: -len(".*")])
        assert set(StrictFrontierRule.STRICT_MODULES) == expected


# ----------------------------------------------------------------------
# REP011 — unused suppressions
# ----------------------------------------------------------------------


class TestUnusedSuppression:
    def test_dead_suppression_fires(self):
        source = _src(
            f"""
            def f():
                return 1  {ALLOW}[REP001]
            """
        )
        findings = lint_sources([(LIB, source)])
        assert _rules_of(findings) == ["REP011"]
        assert "REP001" in findings[0].message

    def test_live_suppression_is_clean(self):
        source = _src(
            f"""
            def f(xs=[]):  {ALLOW}[REP001]
                return xs
            """
        )
        assert lint_sources([(LIB, source)]) == []

    def test_effect_level_suppression_counts_as_used(self):
        source = _src(
            f"""
            class PartitionStore:
                def __init__(self):
                    self._columns = {{}}

                def _swap(self, columns):
                    self._columns = columns  {ALLOW}[REP007]
            """
        )
        assert lint_sources([(STORE, source)]) == []

    def test_audit_skipped_under_select(self):
        source = _src(
            f"""
            def f():
                return 1  {ALLOW}[REP001]
            """
        )
        findings = lint_sources([(LIB, source)], select=["REP002"])
        assert findings == []

    def test_strip_suppressions_removes_only_named_ids(self):
        line = f"x = 1  {ALLOW}[REP001,REP003]"
        out = strip_suppressions(line + "\n", {1: {"REP001"}})
        assert "REP003" in out and "REP001," not in out
        out_all = strip_suppressions(line + "\n", {1: {"REP001", "REP003"}})
        assert out_all == "x = 1\n"


# ----------------------------------------------------------------------
# SARIF output
# ----------------------------------------------------------------------


class TestSarif:
    def test_structure_and_rule_indices(self):
        findings = lint_sources([(STORE, REP007_FIRE)])
        log = to_sarif(findings)
        assert log["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in log["$schema"]
        (run,) = log["runs"]
        rules = run["tool"]["driver"]["rules"]
        ids = [r["id"] for r in rules]
        assert len(ids) == len(set(ids))
        assert {"REP007", "REP011"} <= set(ids)
        (result,) = run["results"]
        assert result["ruleId"] == "REP007"
        assert rules[result["ruleIndex"]]["id"] == "REP007"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1
        loc = result["locations"][0]["physicalLocation"]["artifactLocation"]
        assert loc["uri"] == STORE

    def test_empty_run_is_valid(self):
        log = to_sarif([])
        assert log["runs"][0]["results"] == []
        json.dumps(log)  # must be serializable


# ----------------------------------------------------------------------
# CLI: fixture trees on disk, --diff, --fix-unused, perf guard
# ----------------------------------------------------------------------


def _write_tree(root: Path, files) -> None:
    for rel, source in files:
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")


class TestCli:
    def test_fire_fixture_exits_one(self, tmp_path, monkeypatch, capsys):
        _write_tree(tmp_path, [(STORE, REP007_FIRE)])
        monkeypatch.chdir(tmp_path)
        assert main(["src", "-q"]) == 1
        out = capsys.readouterr().out
        assert "REP007" in out

    def test_clean_fixture_exits_zero(self, tmp_path, monkeypatch):
        _write_tree(tmp_path, [(STORE, REP007_CLEAN)])
        monkeypatch.chdir(tmp_path)
        assert main(["src", "-q"]) == 0

    def test_sarif_output_file(self, tmp_path, monkeypatch):
        _write_tree(tmp_path, [(STORE, REP007_FIRE)])
        monkeypatch.chdir(tmp_path)
        assert main(["src", "--format", "sarif", "--output", "out.sarif", "-q"]) == 1
        log = json.loads((tmp_path / "out.sarif").read_text())
        assert log["runs"][0]["results"][0]["ruleId"] == "REP007"

    def test_select_program_rule(self, tmp_path, monkeypatch, capsys):
        _write_tree(tmp_path, [(STORE, REP007_FIRE)])
        monkeypatch.chdir(tmp_path)
        assert main(["src", "--select", "REP007", "-q"]) == 1
        assert main(["src", "--select", "REP001", "-q"]) == 0
        capsys.readouterr()

    def test_max_seconds_budget_blown_exits_two(self, tmp_path, monkeypatch, capsys):
        _write_tree(tmp_path, [(STORE, REP007_CLEAN)])
        monkeypatch.chdir(tmp_path)
        assert main(["src", "--max-seconds", "0", "-q"]) == 2
        assert "budget" in capsys.readouterr().err

    def test_fix_unused_rewrites_file(self, tmp_path, monkeypatch):
        source = _src(
            f"""
            def f():
                return 1  {ALLOW}[REP001]
            """
        )
        _write_tree(tmp_path, [(LIB, source)])
        monkeypatch.chdir(tmp_path)
        assert main(["src", "--fix-unused", "-q"]) == 0
        rewritten = (tmp_path / LIB).read_text()
        assert "allow" not in rewritten
        assert "return 1" in rewritten
        # idempotent: a second run is clean without fixing anything
        assert main(["src", "-q"]) == 0


class TestDiff:
    @pytest.fixture()
    def repo(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        subprocess.run(["git", "init", "-q"], check=True)
        base = _src(
            """
            def stale(xs={}):
                return xs

            def untouched():
                return 2
            """
        )
        _write_tree(tmp_path, [("pkg/mod.py", base)])
        subprocess.run(["git", "add", "-A"], check=True)
        subprocess.run(
            [
                "git",
                "-c", "user.email=t@example.com",
                "-c", "user.name=t",
                "commit", "-q", "-m", "base",
            ],
            check=True,
        )
        return tmp_path

    def test_diff_restricts_to_changed_functions(self, repo, capsys):
        changed = _src(
            """
            def stale(xs={}):
                return xs

            def untouched():
                return 2

            def fresh(ys=[]):
                return ys
            """
        )
        (repo / "pkg/mod.py").write_text(changed, encoding="utf-8")
        code = main(["pkg", "--diff", "HEAD", "-q"])
        out = capsys.readouterr().out
        assert code == 1
        assert "fresh" in out or "ys" in out
        assert out.count("REP001") == 1  # the pre-existing finding is filtered

    def test_diff_with_no_changes_is_clean(self, repo, capsys):
        code = main(["pkg", "--diff", "HEAD", "-q"])
        capsys.readouterr()
        assert code == 0

    def test_diff_sees_untracked_new_file(self, repo, capsys):
        """A file new relative to BASE never shows up in ``git diff``;
        every finding in it must still be in scope."""
        fresh = _src(
            """
            def brand_new(ys=[]):
                return ys
            """
        )
        (repo / "pkg/new_mod.py").write_text(fresh, encoding="utf-8")
        code = main(["pkg", "--diff", "HEAD", "-q"])
        out = capsys.readouterr().out
        assert code == 1
        assert "new_mod.py" in out
        assert out.count("REP001") == 1  # pre-existing `stale` still filtered

    def test_diff_sees_committed_new_file(self, repo, capsys):
        fresh = _src(
            """
            def brand_new(ys=[]):
                return ys
            """
        )
        (repo / "pkg/new_mod.py").write_text(fresh, encoding="utf-8")
        subprocess.run(["git", "add", "-A"], check=True)
        code = main(["pkg", "--diff", "HEAD", "-q"])
        out = capsys.readouterr().out
        assert code == 1
        assert "new_mod.py" in out

    def test_diff_follows_renames(self, repo, capsys):
        """A rename + one-line edit must only flag the edited lines.

        With rename detection off, git reports the rename as a full
        delete + add and the pre-existing ``stale`` finding resurfaces;
        ``--find-renames`` is forced on even when the repository
        disables detection via ``diff.renames``.
        """
        subprocess.run(
            ["git", "config", "diff.renames", "false"], check=True
        )
        base = (repo / "pkg/mod.py").read_text(encoding="utf-8")
        (repo / "pkg/mod.py").unlink()
        edited = base + _src(
            """
            def fresh(ys=[]):
                return ys
            """
        )
        (repo / "pkg/renamed_mod.py").write_text(edited, encoding="utf-8")
        subprocess.run(["git", "add", "-A"], check=True)
        code = main(["pkg", "--diff", "HEAD", "-q"])
        out = capsys.readouterr().out
        assert code == 1
        assert "renamed_mod.py" in out
        # the untouched `stale` default-arg finding moved with the file
        # and must stay filtered; only `fresh` is new
        assert out.count("REP001") == 1
        assert "fresh" in out or "ys" in out


# ----------------------------------------------------------------------
# Real tree: empty baseline
# ----------------------------------------------------------------------


class TestBaseline:
    def test_tree_matches_committed_baseline(self):
        baseline_path = REPO_ROOT / "tests" / "analysis_baseline.txt"
        baseline = [
            line
            for line in baseline_path.read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]
        findings = run_paths(
            [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")]
        )
        rendered = [
            f"{os.path.relpath(f.path, REPO_ROOT)}:{f.line}: {f.rule}"
            for f in findings
        ]
        assert rendered == baseline

    def test_program_rules_registered(self):
        assert [rule.id for rule in PROGRAM_RULES] == [
            "REP007",
            "REP008",
            "REP009",
            "REP010",
            "REP012",
            "REP013",
            "REP014",
            "REP015",
            "REP016",
            "REP017",
            "REP018",
            "REP019",
        ]
