"""Unit tests for stop extraction (§VI.A) and red-duration estimation."""

import numpy as np
import pytest

from repro.core.redlight import (
    RedConfig,
    estimate_red_duration,
    estimate_red_from_stops,
    refine_red_from_change,
)
from repro.core.signal_types import InsufficientDataError
from repro.core.stops import StopEvents, extract_stops
from repro.matching.partition import LightPartition
from repro.network.geometry import LocalFrame
from repro.trace.records import TraceArrays


def make_partition(t, x_m, taxi_id, speed=None, passenger=None, frame=None):
    """Partition with records along an east-west street at y=0,
    x measured so that the stop line sits at x=0 (dist = x)."""
    frame = frame or LocalFrame()
    t = np.asarray(t, dtype=float)
    x = np.asarray(x_m, dtype=float)
    lon, lat = frame.to_geographic(-x, np.zeros_like(x))
    n = t.size
    tr = TraceArrays(
        taxi_id=np.asarray(taxi_id, dtype=np.int64),
        t=t,
        lon=lon,
        lat=lat,
        speed_kmh=np.zeros(n) if speed is None else np.asarray(speed, float),
        passenger=np.zeros(n, bool) if passenger is None else np.asarray(passenger, bool),
    )
    order = np.argsort(t, kind="stable")
    return LightPartition(
        intersection_id=0,
        approach="EW",
        trace=tr.subset(order),
        segment_id=np.zeros(n, dtype=np.int64),
        dist_to_stopline_m=x[order],
    )


class TestExtractStops:
    def test_single_stop(self):
        # taxi reports at the same spot from t=100..160, then moves
        p = make_partition(
            t=[100, 120, 140, 160, 180],
            x_m=[30, 30, 30, 30, 300],
            taxi_id=[1] * 5,
            speed=[0, 0, 0, 0, 40],
        )
        stops = extract_stops(p)
        assert len(stops) == 1
        assert stops.t_start[0] == 100 and stops.t_end[0] == 160
        assert stops.duration_s[0] == pytest.approx(60.0)
        assert stops.n_records[0] == 4

    def test_moving_taxi_no_stop(self):
        p = make_partition(
            t=[0, 20, 40],
            x_m=[300, 150, 10],
            taxi_id=[1] * 3,
            speed=[40, 40, 40],
        )
        assert len(extract_stops(p)) == 0

    def test_stops_split_per_taxi(self):
        p = make_partition(
            t=[0, 20, 0, 20],
            x_m=[30, 30, 50, 50],
            taxi_id=[1, 1, 2, 2],
        )
        stops = extract_stops(p)
        assert len(stops) == 2
        assert set(stops.taxi_id) == {1, 2}

    def test_far_upstream_stop_ignored(self):
        p = make_partition(
            t=[0, 30],
            x_m=[400, 400],  # 400 m from the light: not this queue
            taxi_id=[1, 1],
        )
        assert len(extract_stops(p, max_dist_to_stopline_m=150.0)) == 0

    def test_passenger_change_flagged(self):
        p = make_partition(
            t=[0, 20, 40],
            x_m=[30, 30, 30],
            taxi_id=[1] * 3,
            passenger=[False, False, True],
        )
        stops = extract_stops(p)
        assert len(stops) == 1 and bool(stops.passenger_changed[0])

    def test_fast_same_position_not_a_stop(self):
        # GPS glitch: same position but odometer says moving
        p = make_partition(
            t=[0, 20],
            x_m=[30, 30],
            taxi_id=[1, 1],
            speed=[35, 35],
        )
        assert len(extract_stops(p)) == 0

    def test_time_window_on_events(self):
        p = make_partition(
            t=[0, 20, 1000, 1020],
            x_m=[30, 30, 40, 40],
            taxi_id=[1, 1, 1, 1],
        )
        stops = extract_stops(p)
        # the 980 s "gap" between the two parked spells joins them only
        # if displacement is small; here both at ~same x so one long event
        windowed = stops.time_window(0.0, 500.0)
        assert all(s < 500.0 for s in windowed.t_start)

    def test_empty_partition(self):
        p = make_partition(t=[], x_m=[], taxi_id=[])
        assert len(extract_stops(p)) == 0


def stop_durations(rng, red=39.0, n=200, interval=15.0, error_frac=0.08, cycle=98.0):
    """Synthetic observed stop durations: uniform waits minus sampling
    truncation, plus a sprinkle of longer errors."""
    waits = rng.uniform(3.0, red, n)
    obs = np.maximum(waits - rng.uniform(0, interval, n) * 0.7, 1.0)
    n_err = int(error_frac * n)
    errors = rng.uniform(red, cycle * 1.1, n_err)
    return np.concatenate([obs, errors])


class TestEstimateRedDuration:
    def test_recovers_red(self, rng):
        d = stop_durations(rng, red=39.0, interval=15.0)
        est = estimate_red_duration(d, 98.0, mean_interval_s=15.0)
        assert est.red_s == pytest.approx(39.0, abs=8.0)

    def test_recovers_longer_red(self, rng):
        d = stop_durations(rng, red=63.0, n=400, interval=20.14, cycle=106.0)
        est = estimate_red_duration(d, 106.0, mean_interval_s=20.14)
        assert est.red_s == pytest.approx(63.0, abs=10.0)

    def test_rejects_durations_beyond_cycle(self, rng):
        d = np.concatenate([stop_durations(rng), np.array([150.0, 200.0])])
        est = estimate_red_duration(d, 98.0, mean_interval_s=15.0)
        assert est.n_stops_rejected >= 2

    def test_histogram_exposed(self, rng):
        est = estimate_red_duration(stop_durations(rng), 98.0, mean_interval_s=15.0)
        assert est.bin_counts.sum() == est.n_stops_used
        assert est.bin_edges.size == est.bin_counts.size + 1
        assert 0 <= est.border_bin < est.bin_counts.size

    def test_insufficient_raises(self):
        with pytest.raises(InsufficientDataError):
            estimate_red_duration(np.array([10.0, 20.0]), 98.0)

    def test_red_never_exceeds_cycle(self, rng):
        d = rng.uniform(90.0, 98.0, 50)
        est = estimate_red_duration(d, 98.0, mean_interval_s=15.0)
        assert est.red_s <= 98.0


class TestEstimateRedFromStops:
    def make_stops(self, rng, red=39.0):
        durations = stop_durations(rng, red=red)
        n = durations.size
        changed = np.zeros(n, bool)
        # tag the error stops as passenger events (they mostly are)
        changed[-int(0.08 * 200):] = True
        return StopEvents(
            taxi_id=np.arange(n),
            t_start=np.zeros(n),
            t_end=durations,
            passenger_changed=changed,
            dist_to_stopline_m=np.full(n, 30.0),
            n_records=np.maximum((durations // 15).astype(np.int64), 1) + 1,
        )

    def test_passenger_filter_applied(self, rng):
        stops = self.make_stops(rng)
        est = estimate_red_from_stops(stops, 98.0, mean_interval_s=15.0)
        assert est.n_stops_used <= len(stops)

    def test_filter_ablation_runs(self, rng):
        stops = self.make_stops(rng)
        est = estimate_red_from_stops(
            stops, 98.0, mean_interval_s=15.0, drop_passenger_changes=False
        )
        assert est.n_stops_used >= 200


class TestRefineRedFromChange:
    def test_refines_with_aligned_stops(self, rng):
        cycle, red, r2g = 98.0, 39.0, 500.0
        n = 80
        waits = rng.uniform(2.0, red, n)
        k = rng.integers(0, 30, n)
        ends = r2g + k * cycle + rng.normal(0, 2.0, n)
        starts = ends - waits
        stops = StopEvents(
            taxi_id=np.arange(n),
            t_start=starts,
            t_end=ends,
            passenger_changed=np.zeros(n, bool),
            dist_to_stopline_m=np.full(n, 30.0),
            n_records=np.full(n, 4, dtype=np.int64),
        )
        refined = refine_red_from_change(stops, cycle, r2g)
        assert refined == pytest.approx(red, abs=6.0)

    def test_none_when_too_few(self):
        stops = StopEvents.empty()
        assert refine_red_from_change(stops, 98.0, 100.0) is None

    def test_none_when_unaligned(self, rng):
        n = 30
        stops = StopEvents(
            taxi_id=np.arange(n),
            t_start=rng.uniform(0, 1000, n),
            t_end=rng.uniform(1000, 2000, n),
            passenger_changed=np.zeros(n, bool),
            dist_to_stopline_m=np.full(n, 30.0),
            n_records=np.full(n, 3, dtype=np.int64),
        )
        # random ends: few align within tolerance of any one phase
        out = refine_red_from_change(stops, 98.0, 55.0, align_tol_s=2.0, min_aligned=15)
        assert out is None

    def test_validation(self):
        with pytest.raises(ValueError):
            refine_red_from_change(StopEvents.empty(), 98.0, 0.0, quantile=1.5)
