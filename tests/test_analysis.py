"""The invariant linter (`repro.analysis`) on fixtures and the real tree.

Each REP rule gets (a) a minimal bad example it must fire on and
(b) a minimal good example it must stay silent on; one test then runs
the whole linter over the actual repository, which is the contract the
CI gate enforces.  Paths are synthetic strings — ``lint_source`` never
touches the filesystem — chosen so ``module_path`` maps them into the
scopes each rule watches.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis import lint_source, run_paths
from repro.analysis.cli import main
from repro.analysis.engine import module_path

REPO = pathlib.Path(__file__).resolve().parents[1]

# Synthetic paths inside each rule's scope.
CORE = "pkg/src/repro/core/somefile.py"
PARITY = "pkg/src/repro/core/batch.py"
SEAM = "pkg/src/repro/parallel/pool.py"
LIB = "pkg/src/repro/matching/somefile.py"
OUTSIDE = "pkg/tests/test_somefile.py"

# Assembled so the scanner never sees the pattern in THIS file's lines
# (the suppression protocol is line-based, not comment-aware).
ALLOW = "# repro" + ": allow"


def rules_of(findings):
    return [f.rule for f in findings]


# ----------------------------------------------------------------------
# module_path
# ----------------------------------------------------------------------
class TestModulePath:
    def test_strips_any_prefix(self):
        assert module_path("/a/b/src/repro/core/x.py") == "repro/core/x.py"

    def test_non_package_path_passthrough(self):
        assert module_path("tests/test_x.py") == "tests/test_x.py"

    def test_rightmost_marker_wins(self):
        assert module_path("/repro/old/src/repro/core/x.py") == "repro/core/x.py"


# ----------------------------------------------------------------------
# REP001 — mutable/shared defaults
# ----------------------------------------------------------------------
class TestRep001:
    def test_list_default_fires(self):
        src = "def f(x=[]):\n    return x\n"
        assert rules_of(lint_source(src, OUTSIDE)) == ["REP001"]

    def test_dict_and_set_defaults_fire(self):
        src = "def f(a={}, b={1}):\n    return a, b\n"
        assert rules_of(lint_source(src, LIB)) == ["REP001", "REP001"]

    def test_constructor_call_default_fires(self):
        src = (
            "class Config:\n    pass\n\n"
            "def f(config=Config()):\n    return config\n"
        )
        assert rules_of(lint_source(src, LIB)) == ["REP001"]

    def test_none_and_tuple_defaults_clean(self):
        src = "def f(a=None, b=(), c=tuple(), d=frozenset()):\n    return a, b, c, d\n"
        assert lint_source(src, LIB) == []

    def test_lambda_default_fires(self):
        src = "g = lambda x=[]: x\n"
        assert rules_of(lint_source(src, LIB)) == ["REP001"]

    def test_dataclass_field_call_default_fires(self):
        src = (
            "from dataclasses import dataclass\n\n"
            "class Params:\n    pass\n\n"
            "@dataclass\nclass C:\n    p: Params = Params()\n"
        )
        assert rules_of(lint_source(src, LIB)) == ["REP001"]

    def test_dataclass_default_factory_clean(self):
        src = (
            "from dataclasses import dataclass, field\n\n"
            "class Params:\n    pass\n\n"
            "@dataclass\nclass C:\n    p: Params = field(default_factory=Params)\n"
        )
        assert lint_source(src, LIB) == []

    def test_plain_class_attribute_not_flagged(self):
        # Without @dataclass a class-body call is an ordinary class
        # attribute, not an instance default.
        src = "class C:\n    registry = make_registry()\n"
        assert lint_source(src, LIB) == []


# ----------------------------------------------------------------------
# REP002 — broad except only at the containment seams
# ----------------------------------------------------------------------
class TestRep002:
    BAD = "try:\n    work()\nexcept Exception:\n    pass\n"

    def test_broad_except_fires_in_library(self):
        assert rules_of(lint_source(self.BAD, CORE)) == ["REP002"]

    def test_bare_except_fires(self):
        src = "try:\n    work()\nexcept:\n    pass\n"
        assert rules_of(lint_source(src, CORE)) == ["REP002"]

    def test_narrow_except_clean(self):
        src = "try:\n    work()\nexcept ValueError:\n    pass\n"
        assert lint_source(src, CORE) == []

    def test_outside_library_not_in_scope(self):
        assert lint_source(self.BAD, OUTSIDE) == []

    def test_seam_file_still_needs_suppression(self):
        assert rules_of(lint_source(self.BAD, SEAM)) == ["REP002"]

    def test_sanctioned_suppression_at_seam(self):
        src = f"try:\n    work()\nexcept Exception:  {ALLOW}[REP002]\n    pass\n"
        assert lint_source(src, SEAM) == []

    def test_suppression_outside_seam_is_itself_a_finding(self):
        src = f"try:\n    work()\nexcept Exception:  {ALLOW}[REP002]\n    pass\n"
        findings = lint_source(src, CORE)
        assert rules_of(findings) == ["REP002"]
        assert "sanctioned" in findings[0].message


# ----------------------------------------------------------------------
# REP003 — RNGs enter through the seams
# ----------------------------------------------------------------------
class TestRep003:
    def test_default_rng_fires(self):
        src = "import numpy as np\nrng = np.random.default_rng(3)\n"
        assert "REP003" in rules_of(lint_source(src, LIB))

    def test_stdlib_random_import_fires(self):
        src = "import random\n"
        assert rules_of(lint_source(src, LIB)) == ["REP003"]

    def test_util_module_exempt(self):
        src = "import numpy as np\nrng = np.random.default_rng(3)\n"
        assert lint_source(src, "pkg/src/repro/_util.py") == []

    def test_outside_library_not_in_scope(self):
        src = "import numpy as np\nrng = np.random.default_rng(3)\n"
        assert lint_source(src, OUTSIDE) == []

    def test_generator_type_annotation_clean(self):
        src = (
            "import numpy as np\n\n"
            "def f(rng: np.random.Generator) -> np.random.SeedSequence:\n"
            "    return np.random.SeedSequence(1)\n"
        )
        assert lint_source(src, LIB) == []


# ----------------------------------------------------------------------
# REP004 — no wall clock in core/trace
# ----------------------------------------------------------------------
class TestRep004:
    def test_time_time_fires(self):
        src = "import time\nt = time.time()\n"
        assert "REP004" in rules_of(lint_source(src, CORE))

    def test_perf_counter_fires(self):
        src = "import time\nt = time.perf_counter()\n"
        assert "REP004" in rules_of(lint_source(src, CORE))

    def test_datetime_now_via_alias_fires(self):
        src = "import datetime as _dt\nt = _dt.datetime.now()\n"
        assert "REP004" in rules_of(lint_source(src, "x/src/repro/trace/somefile.py"))

    def test_obs_package_out_of_scope(self):
        src = "import time\nt = time.perf_counter()\n"
        assert lint_source(src, "x/src/repro/obs/report.py") == []


# ----------------------------------------------------------------------
# REP005 — parity kernels stay float64 and dtype-explicit
# ----------------------------------------------------------------------
class TestRep005:
    def test_float32_attribute_fires(self):
        src = "import numpy as np\nx = np.zeros(3, dtype=np.float32)\n"
        assert "REP005" in rules_of(lint_source(src, PARITY))

    def test_dtype_ambiguous_asarray_fires(self):
        src = "import numpy as np\n\ndef f(x):\n    return np.asarray(x)\n"
        assert "REP005" in rules_of(lint_source(src, PARITY))

    def test_explicit_dtype_clean(self):
        src = (
            "import numpy as np\n\n"
            "def f(x):\n"
            "    return np.asarray(x, dtype=np.float64) + np.asarray(x, np.float64)\n"
        )
        assert lint_source(src, PARITY) == []

    def test_builtin_float_dtype_ambiguous(self):
        src = (
            "import numpy as np\n\n"
            "def f(x):\n"
            "    return np.asarray(x, dtype=float) + np.asarray(x, float)\n"
        )
        findings = lint_source(src, PARITY)
        assert rules_of(findings) == ["REP005", "REP005"]
        assert all("ambiguous" in f.message for f in findings)

    def test_string_f_dtype_fires(self):
        src = (
            "import numpy as np\n\n"
            "def f(x):\n"
            '    return np.asarray(x, dtype="f")\n'
        )
        findings = lint_source(src, PARITY)
        assert "REP005" in rules_of(findings)
        assert any("downcasts below float64" in f.message for f in findings)

    def test_astype_builtin_float_fires(self):
        src = (
            "import numpy as np\n\n"
            "def f(x):\n"
            "    return np.asarray(x, dtype=np.float64).astype(float)\n"
        )
        findings = lint_source(src, PARITY)
        assert "REP005" in rules_of(findings)

    def test_non_parity_file_out_of_scope(self):
        src = "import numpy as np\nx = np.zeros(3, dtype=np.float32)\n"
        assert lint_source(src, "x/src/repro/core/stops.py") == []


# ----------------------------------------------------------------------
# REP006 — no order-sensitive reductions over sets
# ----------------------------------------------------------------------
class TestRep006:
    def test_iterating_set_literal_fires(self):
        src = "total = 0\nfor x in {1.0, 2.0}:\n    total += x\n"
        assert "REP006" in rules_of(lint_source(src, LIB))

    def test_sum_over_set_call_fires(self):
        src = "def f(items):\n    return sum(set(items))\n"
        assert "REP006" in rules_of(lint_source(src, LIB))

    def test_sorted_set_clean(self):
        src = "def f(items):\n    return [g(x) for x in sorted(set(items))]\n"
        assert lint_source(src, LIB) == []


# ----------------------------------------------------------------------
# Engine-level behavior
# ----------------------------------------------------------------------
class TestEngine:
    def test_suppression_comment_silences_rule(self):
        src = f"def f(x=[]):  {ALLOW}[REP001]\n    return x\n"
        assert lint_source(src, LIB) == []

    def test_unknown_rule_in_suppression_flagged(self):
        src = f"x = 1  {ALLOW}[REP999]\n"
        findings = lint_source(src, LIB)
        assert rules_of(findings) == ["REP000"]
        assert "REP999" in findings[0].message

    def test_syntax_error_becomes_rep000(self):
        findings = lint_source("def f(:\n", LIB)
        assert rules_of(findings) == ["REP000"]

    def test_select_filters_rules(self):
        src = "import random\n\ndef f(x=[]):\n    return x\n"
        only = lint_source(src, LIB, select=["REP001"])
        assert rules_of(only) == ["REP001"]

    def test_findings_sorted_by_location(self):
        src = "import random\n\ndef f(x=[]):\n    return x\n"
        findings = lint_source(src, LIB)
        assert [f.line for f in findings] == sorted(f.line for f in findings)

    def test_render_format(self):
        findings = lint_source("def f(x=[]):\n    return x\n", LIB)
        rendered = findings[0].render()
        assert rendered.startswith(f"{LIB}:1:")
        assert "REP001" in rendered


# ----------------------------------------------------------------------
# The real tree is clean — the exact contract CI enforces.
# ----------------------------------------------------------------------
class TestRealTree:
    def test_repository_is_clean(self):
        paths = [
            str(REPO / name)
            for name in ("src", "tests", "benchmarks", "examples")
            if (REPO / name).is_dir()
        ]
        findings = run_paths(paths)
        assert findings == [], "\n".join(f.render() for f in findings)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        f = tmp_path / "clean.py"
        f.write_text("x = 1\n")
        assert main([str(f)]) == 0
        assert "clean" in capsys.readouterr().err

    def test_findings_exit_one_and_print(self, tmp_path, capsys):
        f = tmp_path / "bad.py"
        f.write_text("def f(x=[]):\n    return x\n")
        assert main([str(f)]) == 1
        out = capsys.readouterr()
        assert "REP001" in out.out
        assert "1 finding(s)" in out.err

    def test_select_runs_only_named_rules(self, tmp_path):
        f = tmp_path / "bad.py"
        f.write_text("def f(x=[]):\n    return x\n")
        assert main([str(f), "--select", "REP002"]) == 0

    def test_unknown_rule_is_usage_error(self, tmp_path):
        f = tmp_path / "clean.py"
        f.write_text("x = 1\n")
        with pytest.raises(SystemExit) as exc:
            main([str(f), "--select", "REP042"])
        assert exc.value.code == 2

    def test_missing_path_is_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            main(["does/not/exist"])
        assert exc.value.code == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REP001", "REP002", "REP003", "REP004", "REP005", "REP006"):
            assert rule_id in out
