"""Fast-tier tests for the identifiability-frontier eval (repro.eval.frontier).

A tiny two-point sweep (the same claims the slow bench pins at full
scale): the ``alpha = 0`` endpoint must match the fixed-plan pipeline
bit-for-bit, the ``alpha = 1`` endpoint must be measurably worse, and
every configured backend must agree bitwise along the way.
"""

import json

import pytest

from repro.eval.frontier import (
    FrontierPoint,
    FrontierResult,
    FrontierSpec,
    _partitions_bitwise_equal,
    run_frontier,
)

#: Small enough for the fast tier (~3 s), large enough that both sweep
#: endpoints produce estimates for every light.
TINY = dict(
    alphas=(0.0, 1.0),
    kind="gap",
    n_intersections=2,
    horizon_s=5400.0,
    seed=0,
    eval_start_s=2700.0,
    eval_every_s=2700.0,
    monitor_every_s=600.0,
)


@pytest.fixture(scope="module")
def tiny_result():
    spec = FrontierSpec(backends=("batched", "serial"), **TINY)
    return run_frontier(spec)


class TestFrontierSweep:
    def test_fixed_plan_anchor_is_bitwise(self, tiny_result):
        assert tiny_result.fixed_plan_bitwise_match is True

    def test_degradation_direction(self, tiny_result):
        """Full responsiveness must erode cycle identifiability."""
        assert tiny_result.degradation_monotone()
        pts = sorted(tiny_result.points, key=lambda p: p.alpha)
        assert pts[0].alpha == 0.0 and pts[-1].alpha == 1.0
        assert pts[-1].cycle_mae_s > pts[0].cycle_mae_s

    def test_backends_agree_bitwise(self, tiny_result):
        assert sum(p.backend_mismatches for p in tiny_result.points) == 0

    def test_points_are_populated(self, tiny_result):
        for p in tiny_result.points:
            assert p.n_lights == 2 * TINY["n_intersections"]
            assert p.n_estimates > 0
            assert p.cycle_mae_s >= 0.0
            assert p.cycle_p90_s >= p.cycle_mae_s * 0.0  # finite, non-negative
            assert 0.0 <= p.miss_rate <= 1.0

    def test_to_dict_json_round_trip(self, tiny_result):
        d = tiny_result.to_dict()
        assert d["fixed_plan_bitwise_match"] is True
        assert d["degradation_monotone"] is True
        assert [p["alpha"] for p in d["points"]] == [0.0, 1.0]
        assert json.loads(tiny_result.to_json()) == json.loads(
            json.dumps(d, sort_keys=True)
        )

    def test_summary_mentions_anchor_and_alphas(self, tiny_result):
        text = tiny_result.summary()
        assert "fixed-plan (alpha=0) bitwise anchor: MATCH" in text
        assert "kind=gap" in text
        assert "0.00" in text and "1.00" in text


class TestAlphaZeroBitwise:
    def test_adaptive_city_at_alpha_zero_matches_fixed(self):
        """The scenario builders themselves, not just the sweep wrapper:
        an ``alpha = 0`` adaptive city emits the exact bytes of the
        pre-existing fixed-plan city."""
        from repro.scenario import (
            adaptive_synthetic_lights,
            synthetic_lights,
            synthetic_partitions,
        )

        adaptive = synthetic_partitions(
            adaptive_synthetic_lights(2, alpha=0.0, kind="fuzzy", seed=4),
            0.0, 3600.0, seed=4,
        )
        fixed = synthetic_partitions(
            synthetic_lights(2, seed=4), 0.0, 3600.0, seed=4
        )
        assert _partitions_bitwise_equal(adaptive, fixed)


class TestFrontierSpecValidation:
    def test_defaults_are_valid(self):
        spec = FrontierSpec()
        assert spec.alphas[0] == 0.0
        assert spec.switch_at_s == pytest.approx(spec.horizon_s * 0.5)
        times = spec.eval_times()
        assert times[0] == pytest.approx(spec.eval_start_s)
        assert times[-1] <= spec.horizon_s + 1e-6

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError, match="alpha"):
            FrontierSpec(alphas=(0.0, 1.5))
        with pytest.raises(ValueError, match="alphas"):
            FrontierSpec(alphas=())

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            FrontierSpec(backends=("warp",))

    def test_rejects_bad_geometry_and_windows(self):
        with pytest.raises(ValueError, match="n_intersections"):
            FrontierSpec(n_intersections=0)
        with pytest.raises(ValueError, match="eval_start_s"):
            FrontierSpec(eval_start_s=99999.0)
        with pytest.raises(ValueError, match="switch_fraction"):
            FrontierSpec(switch_fraction=1.0)


class TestFrontierCli:
    def test_cli_sweep_writes_json(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "frontier.json"
        rc = main([
            "frontier", "--kind", "gap", "--alphas", "0", "1",
            "--intersections", "2", "--horizon", "5400",
            "--json", str(out),
        ])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["fixed_plan_bitwise_match"] is True
        assert payload["degradation_monotone"] is True
        assert len(payload["points"]) == 2


def test_frontier_point_fields_serialize():
    """FrontierPoint/FrontierResult stay plain-JSON representable."""
    p = FrontierPoint(
        alpha=0.5, cycle_mae_s=1.0, cycle_p90_s=2.0, n_estimates=4,
        n_failures=0, backend_mismatches=0, false_alarms=1,
        false_alarms_per_light_hour=0.25, miss_rate=0.0, mean_lag_s=150.0,
        n_lights=4,
    )
    result = FrontierResult(
        spec=FrontierSpec(), points=(p,), fixed_plan_bitwise_match=None
    )
    d = result.to_dict()
    assert d["fixed_plan_bitwise_match"] is None
    assert "fixed-plan" not in result.summary()
    json.dumps(d)
