"""Unit tests for the navigation demo (§VIII.B): simulator + routers."""

import numpy as np
import pytest

from repro.lights.intersection import SignalPlan, attach_signals_to_network
from repro.navigation.experiment import (
    NavScenario,
    make_random_signals,
    run_navigation_experiment,
)
from repro.navigation.router import (
    EnumerationRouter,
    EstimatedProvider,
    GroundTruthProvider,
    ZeroWaitProvider,
    navigate,
    shortest_drive_path,
    time_dependent_dijkstra,
)
from repro.navigation.simulator import TravelConfig, TripSimulator
from repro.network.roadnet import grid_network


@pytest.fixture(scope="module")
def nav():
    net = grid_network(3, 3, 1000.0)
    plans = {
        i: [SignalPlan(cycle_s=120.0, ns_red_s=60.0, offset_s=13.0 * i)]
        for i in range(9)
    }
    signals = attach_signals_to_network(net, plans)
    sim = TripSimulator(net, signals, TravelConfig(50.0 / 3.6))
    return net, signals, sim


class TestTripSimulator:
    def test_free_flow_time(self, nav):
        net, signals, sim = nav
        seg = net.segment_between(0, 1)
        assert sim.config.drive_time(seg) == pytest.approx(72.0, abs=0.01)

    def test_no_wait_on_final_leg(self, nav):
        net, signals, sim = nav
        trip = sim.simulate_path([0, 1], depart_at=0.0)
        assert trip.total_wait_s == 0.0
        assert trip.total_time_s == pytest.approx(72.0, abs=0.01)

    def test_wait_matches_ground_truth(self, nav):
        net, signals, sim = nav
        trip = sim.simulate_path([0, 1, 2], depart_at=0.0)
        seg = net.segment_between(0, 1)
        ctl = signals[1].controller_for_segment(seg)
        expected = ctl.wait_if_arriving(72.0)
        assert trip.legs[0].wait_s == pytest.approx(expected)

    def test_trip_times_accumulate(self, nav):
        net, signals, sim = nav
        trip = sim.simulate_path([0, 1, 2, 5], depart_at=100.0)
        assert trip.arrive_at == trip.legs[-1].arrive_at
        assert trip.depart_at == 100.0
        total = sum(l.arrive_at - l.depart_at for l in trip.legs)
        assert trip.total_time_s == pytest.approx(total)

    def test_invalid_path(self, nav):
        _, _, sim = nav
        with pytest.raises(ValueError):
            sim.simulate_path([0, 8], depart_at=0.0)  # not adjacent
        with pytest.raises(ValueError):
            sim.simulate_path([0], depart_at=0.0)


class TestRouters:
    def test_shortest_drive_path_is_manhattan(self, nav):
        net, _, sim = nav
        path = shortest_drive_path(net, 0, 8, sim.config)
        assert len(path) == 5  # 4 hops on a 3x3 grid

    def test_enumeration_router_beats_or_ties_baseline(self, nav):
        net, signals, sim = nav
        provider = GroundTruthProvider(signals)
        for depart in (0.0, 50.0, 111.0):
            base = sim.simulate_path(shortest_drive_path(net, 0, 8), depart)
            aware = navigate(sim, provider, 0, 8, depart)
            assert aware.total_time_s <= base.total_time_s + 1e-6

    def test_dijkstra_optimal_among_enumerated(self, nav):
        net, signals, sim = nav
        provider = GroundTruthProvider(signals)
        for depart in (0.0, 77.0):
            enum_trip = navigate(sim, provider, 0, 8, depart, strategy="enumerate")
            dij_trip = navigate(sim, provider, 0, 8, depart, strategy="dijkstra")
            assert dij_trip.total_time_s <= enum_trip.total_time_s + 1e-6

    def test_time_dependent_dijkstra_path_valid(self, nav):
        net, signals, sim = nav
        provider = GroundTruthProvider(signals)
        path = time_dependent_dijkstra(net, 0, 8, 0.0, provider, sim.config)
        assert path[0] == 0 and path[-1] == 8
        for u, w in zip(path[:-1], path[1:]):
            assert net.segment_between(u, w) is not None

    def test_zero_wait_provider_reduces_to_baseline_path(self, nav):
        net, signals, sim = nav
        router = EnumerationRouter(net, ZeroWaitProvider(), sim.config, extra_hops=0)
        path = router.best_path(0, 8, 0.0)
        assert len(path) == 5  # minimal hop count, no reason to detour

    def test_estimated_provider_uses_given_schedules(self, nav):
        net, signals, sim = nav
        seg = net.segment_between(0, 1)
        truth = signals[1].controller_for_segment(seg).schedule_at(0.0)
        provider = EstimatedProvider({(1, seg.approach): truth})
        assert provider.predicted_wait(seg, 72.0) == pytest.approx(
            truth.wait_if_arriving(72.0)
        )
        # unknown light -> no predicted wait
        other = net.segment_between(3, 4)
        assert provider.predicted_wait(other, 72.0) == 0.0

    def test_same_source_destination(self, nav):
        net, signals, sim = nav
        assert time_dependent_dijkstra(net, 4, 4, 0.0, ZeroWaitProvider()) == [4]
        router = EnumerationRouter(net, ZeroWaitProvider())
        assert router.best_path(4, 4, 0.0) == [4]

    def test_unknown_strategy(self, nav):
        net, signals, sim = nav
        with pytest.raises(ValueError):
            navigate(sim, ZeroWaitProvider(), 0, 8, 0.0, strategy="astar")


class TestExperiment:
    def test_random_signals_red_equals_green(self, rng):
        net = grid_network(3, 3, 1000.0)
        signals = make_random_signals(net, rng=rng)
        for sig in signals.values():
            ns = sig.schedule_at("NS", 0.0)
            assert ns.red_s == pytest.approx(ns.green_s)
            assert 120.0 <= ns.cycle_s <= 300.0

    def test_experiment_shape(self):
        buckets = run_navigation_experiment(
            NavScenario(n_cols=4, n_rows=4),
            hop_distances=(2, 4),
            trips_per_distance=6,
            seed=3,
        )
        assert len(buckets) == 2
        for b in buckets:
            assert b.n_trips > 0
            assert b.aware_mean_s <= b.baseline_mean_s + 1e-6
            assert b.row()

    def test_savings_grow_with_distance(self):
        buckets = run_navigation_experiment(
            NavScenario(n_cols=5, n_rows=5),
            hop_distances=(2, 6),
            trips_per_distance=12,
            seed=0,
        )
        assert buckets[1].saving_fraction >= buckets[0].saving_fraction - 0.05
