"""Edge-case tests for corners not covered by the per-module suites."""

import io

import numpy as np
import pytest

from repro.navigation.experiment import DistanceBucket
from repro.sim.corridor import CorridorSpec, _FixedArrivals, simulate_corridor
from repro.trace import TraceGenerator


class TestFixedArrivals:
    def test_window_filtering(self):
        fa = _FixedArrivals((1.0, 5.0, 9.0, 100.0))
        np.testing.assert_allclose(fa.sample(2.0, 50.0), [5.0, 9.0])

    def test_sorted_even_if_unsorted_input(self):
        fa = _FixedArrivals((9.0, 1.0, 5.0))
        out = fa.sample(0.0, 10.0)
        assert np.all(np.diff(out) >= 0)

    def test_mean_rate(self):
        fa = _FixedArrivals((0.0, 1.0, 2.0, 3.0))
        assert fa.mean_rate(0.0, 3600.0) == pytest.approx(4.0)
        assert fa.mean_rate(5.0, 5.0) == 0.0


class TestCorridorViews:
    def test_tracks_by_segment_regroups(self):
        spec = CorridorSpec(n_lights=2, entry_rate_per_hour=200.0)
        res = simulate_corridor(spec, 0.0, 1200.0, seed=1)
        by_seg = res.tracks_by_segment()
        assert set(by_seg) <= {0, 1}
        total = sum(len(v) for v in by_seg.values())
        assert total == sum(len(j) for j in res.journeys)
        for tracks in by_seg.values():
            entries = [tr.entered_at for tr in tracks]
            assert entries == sorted(entries)


class TestJourneySamplingEdges:
    def test_empty_legs_returns_none(self, rng):
        spec = CorridorSpec(n_lights=2, entry_rate_per_hour=200.0)
        res = simulate_corridor(spec, 0.0, 600.0, seed=1)
        gen = TraceGenerator(res.net)
        assert gen.sample_journey([], 1, rng) is None

    def test_journey_reports_strictly_ordered(self, rng):
        spec = CorridorSpec(n_lights=3, entry_rate_per_hour=300.0)
        res = simulate_corridor(spec, 0.0, 1800.0, seed=2)
        gen = TraceGenerator(res.net)
        for legs in res.journeys[:20]:
            out = gen.sample_journey(legs, 7, rng)
            if out is not None:
                assert np.all(np.diff(out.t) >= 0)
                assert (out.taxi_id == 7).all()


class TestDistanceBucket:
    def test_zero_baseline_saving(self):
        b = DistanceBucket(distance_km=1.0, n_trips=0,
                           baseline_mean_s=0.0, aware_mean_s=0.0)
        assert b.saving_fraction == 0.0

    def test_row_format(self):
        b = DistanceBucket(distance_km=5.0, n_trips=10,
                           baseline_mean_s=400.0, aware_mean_s=340.0)
        assert "15.0%" in b.row()


class TestCliWithoutPlans:
    def test_identify_without_ground_truth(self, tmp_path, capsys):
        """A network file without stored plans must still identify
        (no dCycle column, no crash)."""
        from repro.cli import main
        from repro.eval import simulate_and_partition
        from repro.network.serialization import save_network
        from repro.scenario import small_scenario
        from repro.trace import write_trace

        scn = small_scenario(rate_per_hour=400.0)
        trace, _ = simulate_and_partition(scn, 0.0, 3600.0, seed=5, serial=True)
        prefix = str(tmp_path / "anon")
        with open(f"{prefix}.trace.txt", "w", encoding="utf-8") as fp:
            write_trace(trace, fp)
        with open(f"{prefix}.net.json", "w", encoding="utf-8") as fp:
            save_network(scn.net, fp)  # no plans

        rc = main(["identify", "--city", prefix, "--at", "3600", "--serial"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "dCycle" not in out
        assert "cycle" in out

    def test_evaluate_requires_plans(self, tmp_path, capsys):
        from repro.cli import main
        from repro.network.serialization import save_network
        from repro.scenario import small_scenario

        scn = small_scenario()
        prefix = str(tmp_path / "noplan")
        with open(f"{prefix}.net.json", "w", encoding="utf-8") as fp:
            save_network(scn.net, fp)
        with open(f"{prefix}.trace.txt", "w", encoding="utf-8") as fp:
            fp.write("")
        rc = main(["evaluate", "--city", prefix, "--times", "100"])
        assert rc == 2
