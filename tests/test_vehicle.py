"""Unit tests for repro.sim.vehicle."""

import numpy as np
import pytest

from repro.sim.vehicle import DwellPlan, VehicleParams, VehicleTrack


class TestVehicleParams:
    def test_desired_speed_floor(self, rng):
        p = VehicleParams(free_speed_mps=5.0, free_speed_sd=10.0, min_speed_mps=4.0)
        speeds = [p.sample_desired_speed(rng) for _ in range(200)]
        assert min(speeds) >= 4.0

    def test_validation(self):
        with pytest.raises(ValueError):
            VehicleParams(free_speed_mps=-1)
        with pytest.raises(ValueError):
            VehicleParams(jam_gap_m=0.0)


class TestDwellPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            DwellPlan(at_distance_m=-1.0, duration_s=10.0)
        with pytest.raises(ValueError):
            DwellPlan(at_distance_m=10.0, duration_s=0.0)


def make_track(speeds, t0=100.0):
    speeds = np.asarray(speeds, dtype=float)
    n = speeds.size
    dist = 400.0 - np.concatenate([[0.0], np.cumsum(speeds[:-1])])
    return VehicleTrack(
        vehicle_id=1,
        segment_id=0,
        t=t0 + np.arange(n, dtype=float),
        dist_to_stopline_m=np.maximum(dist, 0.0),
        speed_mps=speeds,
        passenger=np.zeros(n, dtype=bool),
    )


class TestVehicleTrack:
    def test_length_validation(self):
        with pytest.raises(ValueError):
            VehicleTrack(
                vehicle_id=0, segment_id=0,
                t=np.arange(3.0),
                dist_to_stopline_m=np.zeros(2),
                speed_mps=np.zeros(3),
                passenger=np.zeros(3, dtype=bool),
            )

    def test_entered_exited(self):
        tr = make_track([5.0] * 10, t0=50.0)
        assert tr.entered_at == 50.0 and tr.exited_at == 59.0
        assert len(tr) == 10

    def test_no_stop_intervals_when_moving(self):
        tr = make_track([8.0] * 20)
        assert tr.stop_intervals() == []

    def test_single_stop_interval(self):
        tr = make_track([8.0] * 5 + [0.0] * 10 + [8.0] * 5)
        iv = tr.stop_intervals()
        assert len(iv) == 1
        s, e = iv[0]
        assert e - s == pytest.approx(9.0)  # 10 still seconds span 9 s

    def test_two_stop_intervals(self):
        tr = make_track([0.0] * 5 + [8.0] * 3 + [0.0] * 4)
        iv = tr.stop_intervals()
        assert len(iv) == 2

    def test_stop_at_track_edges(self):
        tr = make_track([0.0] * 3 + [8.0] * 3 + [0.0] * 3)
        iv = tr.stop_intervals()
        assert iv[0][0] == tr.t[0]
        assert iv[-1][1] == tr.t[-1]

    def test_stopped_mask_eps(self):
        tr = make_track([0.1, 0.2, 5.0])
        assert tr.stopped_mask(speed_eps=0.15).tolist() == [True, False, False]
