"""Unit tests for the high-frequency event-based baseline."""

import numpy as np
import pytest

from repro.core.highfreq import (
    HighFreqConfig,
    identify_light_highfreq,
    start_events,
)
from repro.core.signal_types import InsufficientDataError
from repro.matching.partition import LightPartition
from repro.network.geometry import LocalFrame
from repro.trace.records import TraceArrays


def partition_from(t, speed, taxi_id):
    t = np.asarray(t, dtype=float)
    n = t.size
    frame = LocalFrame()
    lon, lat = frame.to_geographic(np.zeros(n), np.zeros(n))
    tr = TraceArrays(
        taxi_id=np.asarray(taxi_id, dtype=np.int64),
        t=t,
        lon=lon,
        lat=lat,
        speed_kmh=np.asarray(speed, dtype=float),
    )
    order = np.argsort(t, kind="stable")
    return LightPartition(
        intersection_id=0,
        approach="NS",
        trace=tr.subset(order),
        segment_id=np.zeros(n, dtype=np.int64),
        dist_to_stopline_m=np.full(n, 20.0),
    )


class TestStartEvents:
    def test_detects_stop_to_go(self):
        p = partition_from(
            t=[0, 1, 2, 3, 4],
            speed=[30, 0, 0, 0, 30],
            taxi_id=[1] * 5,
        )
        times, waits = start_events(p)
        assert times.size == 1
        assert times[0] == pytest.approx(3.5)
        assert waits[0] == pytest.approx(2.0)  # stopped from t=1 to t=3

    def test_gap_too_large_missed(self):
        p = partition_from(
            t=[0, 30, 60],
            speed=[0, 0, 30],
            taxi_id=[1] * 3,
        )
        times, _ = start_events(p)  # 30 s gap > max_gap_s
        assert times.size == 0

    def test_crossing_taxi_boundary_ignored(self):
        p = partition_from(
            t=[0, 1],
            speed=[0, 30],
            taxi_id=[1, 2],
        )
        times, _ = start_events(p)
        assert times.size == 0

    def test_empty(self):
        p = partition_from(t=[], speed=[], taxi_id=[])
        times, waits = start_events(p)
        assert times.size == 0 and waits.size == 0


class TestIdentifyHighFreq:
    def make_highfreq_partition(self, rng, cycle=98.0, red=39.0, offset=10.0):
        """1 Hz probes: one vehicle per cycle waits out the red."""
        rows_t, rows_v, rows_id = [], [], []
        for k in range(30):
            red_start = offset + k * cycle
            arrive = red_start + float(rng.uniform(0.0, red * 0.7))
            wait_until = red_start + red
            # 1 Hz reports: approach, wait, depart
            for i in range(3):
                rows_t.append(arrive - 3 + i)
                rows_v.append(30.0)
            tt = np.arange(arrive, wait_until, 1.0)
            rows_t.extend(tt)
            rows_v.extend([0.0] * tt.size)
            for i in range(3):
                rows_t.append(wait_until + i)
                rows_v.append(15.0 + 10 * i)
            rows_id.extend([100 + k] * (3 + tt.size + 3))
        return partition_from(rows_t, rows_v, rows_id)

    def test_recovers_schedule_from_1hz(self, rng):
        p = self.make_highfreq_partition(rng)
        sched = identify_light_highfreq(p, at_time=float(p.trace.t.max()),
                                        window_s=3000.0)
        assert sched.cycle_s == pytest.approx(98.0, abs=1.0)
        # red→green instants land on the true phase
        true_r2g = (10.0 + 39.0) % 98.0
        est_r2g = (sched.offset_s + sched.red_s) % sched.cycle_s
        d = abs(est_r2g - true_r2g)
        assert min(d, 98.0 - d) <= 4.0

    def test_insufficient_events_raises(self):
        p = partition_from(
            t=[0, 1, 2], speed=[0, 0, 30], taxi_id=[1, 1, 1]
        )
        with pytest.raises(InsufficientDataError):
            identify_light_highfreq(p, at_time=100.0)

    def test_low_frequency_data_fails(self, rng):
        """The paper's claim in miniature: thin the 1 Hz probes to 20 s
        reports and the event method must give up."""
        p = self.make_highfreq_partition(rng)
        keep = np.zeros(len(p.trace), dtype=bool)
        keep[::20] = True
        thinned = LightPartition(
            p.intersection_id, p.approach,
            p.trace.subset(keep), p.segment_id[keep],
            p.dist_to_stopline_m[keep],
        )
        with pytest.raises(InsufficientDataError):
            identify_light_highfreq(thinned, at_time=float(p.trace.t.max()),
                                    window_s=3000.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HighFreqConfig(min_cycle_s=100.0, max_cycle_s=50.0)
