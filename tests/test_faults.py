"""Fault-injection coverage for the identification pipeline.

Historical bug: ``_identify_one`` caught only ``InsufficientDataError``,
so any other exception raised inside one light's pipeline — a
``ValueError`` from degenerate inputs, a crash in the change-point
stage — propagated out of the worker and aborted the entire
``identify_many`` pool.  These tests inject each failure mode the issue
names (empty phase window, all-stopped profile, zero-duration stops,
corrupt arrays, degenerate red estimates) and assert the blast radius
is one light.
"""

import numpy as np
import pytest

from repro.core import PipelineConfig, identify_light, identify_many
from repro.core import monitor as monitor_mod
from repro.core import pipeline as pipeline_mod
from repro.core.cycle import CycleConfig, _scan_fold, identify_cycle_from_samples
from repro.core.monitor import monitor_cycle, repair_outliers
from repro.core.redlight import estimate_red_duration
from repro.core.signal_types import InsufficientDataError, RedEstimate
from repro.matching.partition import LightPartition
from repro.obs import StageTelemetry
from repro.trace.records import TraceArrays


def synth_partition(n=600, span_s=5400.0, period=98.0, speed=None, seed=0, iid=0):
    """A synthetic one-light partition with controllable speeds."""
    rng = np.random.default_rng(seed)
    t = np.sort(rng.uniform(0.0, span_s, n))
    taxi = rng.integers(0, 40, n)
    if speed is None:
        v = np.clip(25.0 + 20.0 * np.cos(2 * np.pi * t / period)
                    + rng.normal(0.0, 3.0, n), 0.0, None)
    else:
        v = np.broadcast_to(np.asarray(speed, dtype=float), t.shape).copy()
    trace = TraceArrays(taxi, t, np.zeros(n), np.zeros(n), v)
    return LightPartition(
        intersection_id=iid,
        approach="NS",
        trace=trace,
        segment_id=np.zeros(n, dtype=np.int64),
        dist_to_stopline_m=np.full(n, 40.0),
    )


class TestIdentifyManyContainment:
    def test_empty_phase_window_contained(self, partitions):
        # Records stop at t=4200 but identification runs at 5400: the
        # cycle window still has data, the phase window has none.
        key = sorted(partitions)[0]
        city = dict(partitions)
        city[key] = city[key].time_window(0.0, 4200.0)
        ests, fails = identify_many(city, 5400.0, serial=True)
        assert len(ests) + len(fails) == len(city)
        assert key in fails
        assert fails[key].error_type == "InsufficientDataError"

    @pytest.mark.slow
    def test_corrupt_arrays_do_not_abort_pool(self, partitions):
        key = sorted(partitions)[0]
        p = partitions[key]
        city = dict(partitions)
        city[key] = LightPartition(
            p.intersection_id, p.approach, p.trace, p.segment_id, np.empty(3)
        )
        # Both execution modes must survive — the historical failure was
        # the ValueError escaping a pmap worker mid-chunk.
        for kwargs in ({"serial": True}, {"max_workers": 2}):
            ests, fails = identify_many(city, 5400.0, **kwargs)
            assert key in fails
            assert fails[key].error_type == "ValueError"
            assert fails[key].stage == "samples"
            assert len(ests) >= len(city) - len(fails)

    def test_all_stopped_profile_contained(self):
        # Every report at 0 km/h: a flat, zero-variance signal.
        dead = synth_partition(speed=0.0)
        healthy = synth_partition(seed=1, iid=1)
        city = {dead.key: dead, healthy.key: healthy}
        ests, fails = identify_many(city, 5400.0, serial=True)
        assert len(ests) + len(fails) == 2
        assert healthy.key in ests or healthy.key in fails  # run completed

    def test_crash_in_changepoint_attributed_to_stage(self, partitions, monkeypatch):
        def boom(*args, **kwargs):
            raise RuntimeError("injected changepoint crash")

        monkeypatch.setattr(pipeline_mod, "find_signal_change", boom)
        ests, fails = identify_many(partitions, 5400.0, serial=True)
        assert not ests
        assert all(f.error_type == "RuntimeError" for f in fails.values())
        assert all(f.stage == "changepoint" for f in fails.values())


class TestRedClamp:
    def _degenerate_red(self, red_s):
        edges = np.arange(3, dtype=float) * 20.14
        return RedEstimate(
            red_s=red_s, border_bin=0, bin_edges=edges,
            bin_counts=np.zeros(2, dtype=np.int64),
            n_stops_used=0, n_stops_rejected=0,
        )

    def test_zero_red_estimate_no_longer_raises(self, partitions, monkeypatch):
        # Border-interval estimator returning ~0 used to hit
        # check_positive("red_s") inside find_signal_change.
        monkeypatch.setattr(
            pipeline_mod, "estimate_red_duration",
            lambda *a, **k: self._degenerate_red(0.0),
        )
        key = sorted(partitions)[0]
        est = identify_light(
            partitions[key], 5400.0, config=PipelineConfig(refine_red=False)
        )
        assert est.red_s >= pipeline_mod._MIN_RED_S

    def test_degenerate_refined_red_clamped(self, partitions, monkeypatch):
        monkeypatch.setattr(
            pipeline_mod, "refine_red_from_change", lambda *a, **k: 0.0
        )
        key = sorted(partitions)[0]
        est = identify_light(partitions[key], 5400.0)
        assert est.red_s >= pipeline_mod._MIN_RED_S

    def test_zero_duration_stops_filtered(self):
        durations = np.concatenate([np.zeros(20), np.full(8, 30.0)])
        red = estimate_red_duration(durations, 98.0)
        assert red.n_stops_used == 8
        assert red.red_s > 0.0

    def test_only_zero_duration_stops_is_insufficient(self):
        with pytest.raises(InsufficientDataError):
            estimate_red_duration(np.zeros(30), 98.0)


class TestScanBand:
    def test_scan_fold_respects_upper_bound(self):
        # True period 100.1 s, band capped at 100.0: the float arange
        # grid used to emit a candidate half a step past the cap.
        rng = np.random.default_rng(3)
        t = np.sort(rng.uniform(0.0, 3000.0, 400))
        v = np.cos(2 * np.pi * t / 100.1)
        c, z = _scan_fold(t, v, 99.0, 1.0, 0.55, 4.0, 40.0, 100.0)
        assert c <= 100.0
        assert np.isfinite(z)

    def test_refined_cycle_stays_in_band(self):
        rng = np.random.default_rng(5)
        t = np.sort(rng.uniform(0.0, 3000.0, 500))
        v = 25.0 + 20.0 * np.cos(2 * np.pi * t / 98.0) + rng.normal(0, 2, t.size)
        cfg = CycleConfig(min_cycle_s=40.0, max_cycle_s=98.4)
        est = identify_cycle_from_samples(t, v, 0.0, 3000.0, cfg)
        assert cfg.min_cycle_s <= est.cycle_s <= cfg.max_cycle_s

    def test_cycle_counters_flow_to_telemetry(self):
        rng = np.random.default_rng(6)
        t = np.sort(rng.uniform(0.0, 3000.0, 500))
        v = 25.0 + 20.0 * np.cos(2 * np.pi * t / 98.0) + rng.normal(0, 2, t.size)
        tel = StageTelemetry()
        identify_cycle_from_samples(t, v, 0.0, 3000.0, CycleConfig(), telemetry=tel)
        assert tel.counters["cycle_candidates_scanned"] >= 1
        assert tel.counters.get("cycle_refine_scans", 0) == 1


class TestMonitorContainment:
    def test_monitor_survives_injected_crashes(self, partitions, monkeypatch):
        real = monitor_mod.identify_cycle_from_samples
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] % 2 == 0:
                raise RuntimeError("injected window crash")
            return real(*args, **kwargs)

        monkeypatch.setattr(monitor_mod, "identify_cycle_from_samples", flaky)
        p = partitions[sorted(partitions)[0]]
        series = monitor_cycle(p, 0.0, 5400.0, every_s=600.0)
        assert series.n_errors > 0
        assert len(series) == calls["n"]
        # errors land as NaN windows but the series still has estimates
        assert np.isfinite(series.cycle_s).sum() > 0
        repaired = repair_outliers(series)
        assert repaired.n_errors == series.n_errors

    def test_monitor_on_all_stopped_partition(self):
        dead = synth_partition(speed=0.0)
        series = monitor_cycle(dead, 0.0, 5400.0, every_s=900.0)
        # flat windows either estimate something or fail cleanly — no raise
        assert len(series) > 0
