"""Unit + property tests for repro.lights.schedule."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.lights.schedule import LightSchedule, Phase


def schedules():
    # build (cycle, red fraction, offset) so red < cycle always holds
    return st.tuples(
        st.floats(10.0, 300.0),
        st.floats(0.05, 0.95),
        st.floats(0.0, 500.0),
    ).map(lambda t: LightSchedule(t[0], t[0] * t[1], t[2]))


class TestConstruction:
    def test_green_is_complement(self):
        s = LightSchedule(98, 39, 0)
        assert s.green_s == pytest.approx(59)

    def test_rejects_red_ge_cycle(self):
        with pytest.raises(ValueError):
            LightSchedule(98, 98, 0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            LightSchedule(0, -1, 0)


class TestPhases:
    def test_red_at_offset(self):
        s = LightSchedule(98, 39, offset_s=10)
        assert s.phase(10.0) == Phase.RED
        assert s.phase(48.9) == Phase.RED
        assert s.phase(49.0) == Phase.GREEN
        assert s.phase(9.9) == Phase.GREEN

    def test_vectorized_is_red(self):
        s = LightSchedule(98, 39, 0)
        t = np.array([0.0, 38.9, 39.0, 97.9, 98.0])
        np.testing.assert_array_equal(s.is_red(t), [True, True, False, False, True])

    @given(s=schedules(), t=st.floats(-1e4, 1e4))
    def test_periodicity(self, s, t):
        # skip points within float fuzz of a phase boundary
        local = float(s.time_in_cycle(t))
        boundary_dist = min(
            local, abs(local - s.red_s), abs(local - s.cycle_s)
        )
        if boundary_dist < 1e-6:
            return
        assert bool(s.is_red(t)) == bool(s.is_red(t + s.cycle_s))

    @given(s=schedules(), t=st.floats(-1e4, 1e4))
    def test_red_xor_green(self, s, t):
        assert bool(s.is_red(t)) != bool(s.is_green(t))

    @given(s=schedules())
    def test_red_fraction_matches_duty(self, s):
        t = s.offset_s + np.linspace(0, s.cycle_s, 10000, endpoint=False)
        frac = float(np.mean(s.is_red(t)))
        assert frac == pytest.approx(s.red_s / s.cycle_s, abs=0.01)


class TestChanges:
    def test_next_change_from_red(self):
        s = LightSchedule(98, 39, 0)
        t, phase = s.next_change(10.0)
        assert t == pytest.approx(39.0) and phase == Phase.GREEN

    def test_next_change_from_green(self):
        s = LightSchedule(98, 39, 0)
        t, phase = s.next_change(50.0)
        assert t == pytest.approx(98.0) and phase == Phase.RED

    @given(s=schedules(), t=st.floats(0, 1e4))
    def test_next_change_flips_phase(self, s, t):
        tc, new_phase = s.next_change(t)
        assert tc > t
        assert s.phase(tc + 1e-6) == new_phase
        assert s.phase(t) != new_phase or True  # phase at t may equal boundary

    def test_wait_if_arriving(self):
        s = LightSchedule(98, 39, 0)
        assert s.wait_if_arriving(0.0) == pytest.approx(39.0)
        assert s.wait_if_arriving(30.0) == pytest.approx(9.0)
        assert s.wait_if_arriving(50.0) == 0.0

    @given(s=schedules(), t=st.floats(0, 1e4))
    def test_wait_bounded_by_red(self, s, t):
        w = s.wait_if_arriving(t)
        assert 0.0 <= w <= s.red_s + 1e-9
        if w > 0:
            # after waiting the light must be green
            assert bool(s.is_green(t + w + 1e-6))

    def test_change_times_in_cycle(self):
        s = LightSchedule(98, 39, offset_s=200)  # offset > cycle
        assert s.green_to_red_in_cycle == pytest.approx(200 % 98)
        assert s.red_to_green_in_cycle == pytest.approx((200 + 39) % 98)


class TestRedIntervals:
    def test_intervals_cover_reds(self):
        s = LightSchedule(100, 40, 0)
        iv = s.red_intervals(0.0, 250.0)
        np.testing.assert_allclose(iv, [[0, 40], [100, 140], [200, 240]])

    def test_clipping(self):
        s = LightSchedule(100, 40, 0)
        iv = s.red_intervals(20.0, 110.0)
        np.testing.assert_allclose(iv, [[20, 40], [100, 110]])

    def test_empty_window(self):
        s = LightSchedule(100, 40, 0)
        assert s.red_intervals(50.0, 50.0).shape == (0, 2)

    @given(s=schedules(), t0=st.floats(0, 1000), span=st.floats(1, 500))
    def test_total_red_time_fraction(self, s, t0, span):
        iv = s.red_intervals(t0, t0 + span)
        total = float(np.sum(iv[:, 1] - iv[:, 0])) if iv.size else 0.0
        assert 0.0 <= total <= span + 1e-6


class TestComplement:
    @given(s=schedules(), t=st.floats(0, 1e4))
    def test_complement_is_opposite(self, s, t):
        local = float(s.time_in_cycle(t))
        boundary_dist = min(
            local, abs(local - s.red_s), abs(local - s.cycle_s)
        )
        if boundary_dist < 1e-6:
            return
        c = s.complement()
        assert bool(s.is_red(t)) == bool(c.is_green(t))

    @given(s=schedules())
    def test_complement_shares_cycle(self, s):
        assert s.complement().cycle_s == s.cycle_s

    @given(s=schedules())
    def test_double_complement_same_signal(self, s):
        assert s.complement().complement().describes_same_signal(s, tol_s=1e-6)


class TestEquivalence:
    def test_offset_modulo_cycle_same_signal(self):
        a = LightSchedule(98, 39, 10)
        b = LightSchedule(98, 39, 10 + 98 * 3)
        assert a.describes_same_signal(b)

    def test_different_red_not_same(self):
        a = LightSchedule(98, 39, 0)
        b = LightSchedule(98, 40, 0)
        assert not a.describes_same_signal(b)

    def test_shifted(self):
        s = LightSchedule(98, 39, 0).shifted(10.0)
        assert s.offset_s == pytest.approx(10.0)
