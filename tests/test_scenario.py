"""Unit tests for the canned scenarios."""

import numpy as np
import pytest

from repro.scenario.shenzhen import TABLE2, shenzhen_scenario
from repro.scenario.small import small_scenario


class TestTable2:
    def test_nine_rows(self):
        assert len(TABLE2) == 9
        assert [r.id for r in TABLE2] == list(range(1, 10))

    def test_paper_values(self):
        busiest = max(TABLE2, key=lambda r: r.records_per_hour)
        idlest = min(TABLE2, key=lambda r: r.records_per_hour)
        assert busiest.records_per_hour == 5071 and busiest.id == 1
        assert idlest.records_per_hour == 198 and idlest.id == 5
        # the paper highlights the ~25x imbalance
        assert busiest.records_per_hour / idlest.records_per_hour == pytest.approx(25.6, abs=0.5)

    def test_locations_in_shenzhen(self):
        for row in TABLE2:
            assert 113.5 < row.lon < 114.5
            assert 22.3 < row.lat < 22.8


class TestShenzhenScenario:
    @pytest.fixture(scope="class")
    def scn(self):
        return shenzhen_scenario()

    def test_structure(self, scn):
        # 9 cores + 36 feeders; 36 approaches + 36 exits
        assert len(scn.net.intersections) == 45
        assert len(scn.net.segments) == 72
        assert len(scn.net.signalized_intersections()) == 9

    def test_every_core_has_four_approaches(self, scn):
        for i in range(9):
            assert len(scn.net.incoming(i)) == 4
            groups = scn.net.approaches(i)
            assert len(groups["NS"]) == 2 and len(groups["EW"]) == 2

    def test_rates_follow_table2(self, scn):
        rates = [scn.intersection_rate(i) for i in range(9)]
        recs = [row.records_per_hour for row in TABLE2]
        # arrival rates must be proportional to Table II record rates
        ratio = np.array(rates) / np.array(recs)
        assert ratio.std() / ratio.mean() < 1e-9

    def test_preprogrammed_downtown(self, scn):
        # intersections 0 and 6 (Table II ids 1 and 7) switch plans
        ns0 = scn.signals[0].controllers["NS"]
        assert len(ns0.plan_switch_times(0.0, 86_400.0)) >= 2
        ns2 = scn.signals[2].controllers["NS"]
        assert ns2.plan_switch_times(0.0, 86_400.0) == []

    def test_peak_plan_has_longer_cycle(self, scn):
        off = scn.truth_at(0, "NS", 3 * 3600.0)
        peak = scn.truth_at(0, "NS", 8 * 3600.0)
        assert peak.cycle_s > off.cycle_s

    def test_deterministic(self):
        a, b = shenzhen_scenario(seed=1), shenzhen_scenario(seed=1)
        for i in range(9):
            assert a.plans[i][0].cycle_s == b.plans[i][0].cycle_s

    def test_simulation_builds(self, scn):
        sim = scn.simulation()
        specs = sim.specs(0.0, 100.0)
        assert len(specs) == 36  # only the approaches are simulated


class TestSmallScenario:
    def test_known_truth(self):
        scn = small_scenario(cycle_s=98.0, ns_red_s=39.0)
        for i in range(4):
            ns = scn.truth_at(i, "NS", 0.0)
            ew = scn.truth_at(i, "EW", 0.0)
            assert ns.cycle_s == ew.cycle_s == 98.0
            assert ns.red_s == pytest.approx(39.0)
            assert ew.red_s == pytest.approx(59.0)

    def test_simulation_runs(self):
        scn = small_scenario()
        res = scn.simulation().run(0.0, 300.0, seed=0, serial=True)
        assert res.n_vehicles() > 0
