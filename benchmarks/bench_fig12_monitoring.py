"""Fig. 12 — continuous monitoring of the cycle length.

The paper plots the cycle re-estimated every 5 minutes for three days:
stable plateaus per plan, obvious outliers, and repeated daily
peak/off-peak switches.  We regenerate one simulated day on a
pre-programmed downtown light (Table II row 1), plot-as-text the
series, repair outliers, detect the plan switches, and show the
day-over-day historical correction on a second day.
"""

import numpy as np
import pytest

from conftest import banner
from repro.core.monitor import (
    HistoricalProfile,
    detect_plan_changes,
    monitor_cycle,
    repair_outliers,
)
from repro.matching import match_trace, partition_by_light
from repro.trace import TraceGenerator


@pytest.fixture(scope="module")
def monitored_light(shenzhen):
    """Intersection 0 (pre-programmed) simulated 05:00–12:00, spanning
    the 07:00 and 10:00 plan switches."""
    sim = shenzhen.simulation()
    # restrict to intersection 0's approaches to keep this bench fast
    sim.rate_per_segment = {
        sid: r for sid, r in sim.rate_per_segment.items()
        if shenzhen.net.segments[sid].to_id == 0
    }
    res = sim.run(5 * 3600.0, 12 * 3600.0, seed=99)
    trace = TraceGenerator(shenzhen.net).generate(res, rng=np.random.default_rng(4))
    parts = partition_by_light(match_trace(trace, shenzhen.net), shenzhen.net)
    return parts[(0, "NS")]


def sparkline(values, lo, hi):
    glyphs = " .:-=+*#%@"
    out = []
    for v in values:
        if np.isnan(v):
            out.append("?")
        else:
            k = int(np.clip((v - lo) / max(hi - lo, 1e-9) * (len(glyphs) - 1), 0, len(glyphs) - 1))
            out.append(glyphs[k])
    return "".join(out)


def test_fig12_continuous_monitoring(benchmark, shenzhen, monitored_light):
    p = monitored_light
    series = benchmark.pedantic(
        monitor_cycle, args=(p, 5 * 3600.0, 12 * 3600.0),
        kwargs=dict(every_s=300.0, window_s=1800.0),
        rounds=1, iterations=1,
    )

    banner("Fig. 12 — 5-minute cycle monitoring across plan switches")
    off = shenzhen.truth_at(0, "NS", 6 * 3600.0).cycle_s
    peak = shenzhen.truth_at(0, "NS", 8 * 3600.0).cycle_s
    print(f"  ground truth: off-peak {off:.0f} s, peak {peak:.0f} s; "
          f"switches at 07:00 and 10:00")
    print(f"  estimates: {len(series)} windows, "
          f"valid {100 * series.valid_fraction():.0f}%")
    print(f"  raw      [{sparkline(series.cycle_s, off - 10, peak + 10)}]")

    repaired = repair_outliers(series)
    print(f"  repaired [{sparkline(repaired.cycle_s, off - 10, peak + 10)}]")

    changes = detect_plan_changes(repaired)
    for ch in changes:
        hh = ch.at_time / 3600.0
        print(f"  detected plan change at {hh:05.2f} h: "
              f"{ch.old_cycle_s:.0f} s -> {ch.new_cycle_s:.0f} s")
    assert changes, "the 07:00 peak switch must be detected"
    onsets = [ch.at_time for ch in changes]
    assert min(abs(t - 7 * 3600.0) for t in onsets) <= 2400.0, \
        "switch onset must be located within the monitoring latency"

    # historical correction: same light, same time-of-day expectation
    hist = HistoricalProfile([repaired])
    wild_estimate = 2.0 * off
    corrected = hist.correct(6 * 3600.0 + 900.0, wild_estimate)
    print(f"  historical correction: {wild_estimate:.0f} s -> {corrected:.0f} s "
          f"(expected ~{off:.0f} s)")
    assert abs(corrected - off) <= 10.0
