"""Analyzer wall-time bench — the 10 s whole-tree budget, measured.

CI's lint job runs ``python -m repro.analysis src tests benchmarks
examples --max-seconds 10`` as a *blocking* step; this bench measures
the same whole-tree run from the engine API, reports where the time
goes (file collection + parse + per-file rules vs the whole-program
fixpoints), and records wall time plus per-rule finding counts as a
JSON artifact so budget drift is visible run over run — an analyzer
that creeps from 4 s to 9 s still passes the gate but has eaten the
headroom the next whole-program rule needs.

Knobs: ``REPRO_ANALYSIS_BENCH_JSON`` writes the measurements as a JSON
artifact (used by the non-blocking CI slow job); the in-process budget
assertion mirrors the lint gate's ``--max-seconds 10``.
"""

import json
import os
import time
from collections import Counter
from pathlib import Path

from conftest import banner
from repro.analysis.engine import iter_python_files, lint_sources, run_paths

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Same trees, same budget as the blocking CI lint step.
ANALYSIS_ROOTS = ("src", "tests", "benchmarks", "examples")
BUDGET_S = 10.0


def test_analyzer_budget():
    roots = [str(REPO_ROOT / r) for r in ANALYSIS_ROOTS]
    t0 = time.perf_counter()
    findings = run_paths(roots)
    elapsed = time.perf_counter() - t0

    # phase split: the same files through per-file rules only — the
    # difference is what the call-graph / effect / precision fixpoints
    # and the program rules cost on top
    files = [
        (path, Path(path).read_text(encoding="utf-8"))
        for path in iter_python_files(roots)
    ]
    t1 = time.perf_counter()
    lint_sources(files, program_rules=())
    per_file_s = time.perf_counter() - t1
    program_s = max(elapsed - per_file_s, 0.0)

    per_rule = Counter(f.rule for f in findings)
    banner(
        f"Whole-tree analyzer: {', '.join(ANALYSIS_ROOTS)} "
        f"({elapsed:.2f}s against a {BUDGET_S:.0f}s budget)"
    )
    print(f"  files analyzed: {len(files)}")
    print(f"  findings: {len(findings)}")
    for rule, count in sorted(per_rule.items()):
        print(f"    {rule}: {count}")
    print(f"  per-file rules + parse: {per_file_s:.2f}s")
    print(f"  whole-program fixpoints + rules: {program_s:.2f}s")
    print(f"  wall time: {elapsed:.2f}s ({elapsed / BUDGET_S:.0%} of budget)")

    out_path = os.environ.get("REPRO_ANALYSIS_BENCH_JSON")
    if out_path:
        payload = {
            "roots": list(ANALYSIS_ROOTS),
            "budget_s": BUDGET_S,
            "wall_time_s": round(elapsed, 3),
            "per_file_s": round(per_file_s, 3),
            "program_s": round(program_s, 3),
            "budget_used": round(elapsed / BUDGET_S, 3),
            "n_files": len(files),
            "n_findings": len(findings),
            "findings_per_rule": dict(sorted(per_rule.items())),
        }
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"  wrote {out_path}")

    # the committed-empty baseline, re-proven from the bench path
    assert findings == [], (
        "whole-tree analyzer run must stay clean (committed-empty baseline)"
    )
    # mirror of the lint gate's --max-seconds 10: if this fails, the
    # blocking CI step is about to start failing too
    assert elapsed <= BUDGET_S, (
        f"analyzer took {elapsed:.2f}s; the CI gate enforces {BUDGET_S:.0f}s"
    )
