"""Fig. 7 — intersection-based enhancement on sparse minor roads.

The paper's fix for data sparsity: when one direction of a crossroad is
too sparse to reconstruct the cycle, mirror the perpendicular
direction's speed about the intersection mean (Eq. 3) and merge — both
directions share the cycle length, and their flows alternate.

This bench recreates the figure's setting as a controlled experiment:
one intersection whose North-South approach sees very little taxi
traffic while East-West is moderately covered.  Cycle identification on
the sparse direction is scored with the enhancement disabled vs
enabled, across many windows.
"""

import numpy as np
import pytest

from conftest import banner
from repro.core.cycle import identify_cycle_from_samples
from repro.core.enhancement import choose_primary, enhance_samples
from repro.core.pipeline import _window_samples
from repro.core.signal_types import InsufficientDataError
from repro.lights.intersection import SignalPlan, attach_signals_to_network
from repro.matching import match_trace, partition_by_light
from repro.network import grid_network
from repro.sim import ApproachConfig, CitySimulation
from repro.trace import TraceGenerator

CYCLE = 98.0
NS_RATE = 60.0     # vehicles/hour — a minor road taxis seldom cover
EW_RATE = 420.0    # the perpendicular arterial


@pytest.fixture(scope="module")
def sparse_intersection():
    net = grid_network(2, 2, 500.0)
    plans = {i: [SignalPlan(CYCLE, 39.0, offset_s=11.0 * i)] for i in range(4)}
    signals = attach_signals_to_network(net, plans)
    rates = {}
    for seg in net.segments:
        rates[seg.id] = NS_RATE if seg.approach == "NS" else EW_RATE
    sim = CitySimulation(net, signals, rates, ApproachConfig(segment_length_m=400.0))
    res = sim.run(0.0, 4 * 3600.0, seed=31)
    trace = TraceGenerator(net).generate(res, rng=np.random.default_rng(6))
    return partition_by_light(match_trace(trace, net), net)


def _attempt(partition, perpendicular, at, enhance, window=1800.0):
    t, v = _window_samples(partition, at - window, at, 150.0)
    n_own = t.size
    if enhance and perpendicular is not None:
        tp, vp = _window_samples(perpendicular, at - window, at, 150.0)
        if tp.size:
            t1, v1, t2, v2 = choose_primary(t, v, tp, vp)
            t, v = enhance_samples(t1, v1, t2, v2)
    try:
        est = identify_cycle_from_samples(t, v, at - window, at, enhanced=enhance)
        return est.cycle_s, n_own, t.size
    except InsufficientDataError:
        return None, n_own, t.size


def test_fig07_enhancement(benchmark, sparse_intersection):
    partitions = sparse_intersection
    times = np.arange(7200.0, 4 * 3600.0 + 1, 900.0)

    banner("Fig. 7 — intersection-based enhancement (sparse NS direction)")
    print(f"  setup: NS ~{NS_RATE:.0f} veh/h (sparse), "
          f"EW ~{EW_RATE:.0f} veh/h, shared cycle {CYCLE:.0f} s")

    stats = {False: [], True: []}
    for iid in range(4):
        p = partitions.get((iid, "NS"))
        q = partitions.get((iid, "EW"))
        if p is None or q is None:
            continue
        for at in times:
            for enhance in (False, True):
                cyc, n_own, n_used = _attempt(p, q, at, enhance)
                err = abs(cyc - CYCLE) if cyc is not None else np.inf
                stats[enhance].append((err, n_own, n_used))

    for enhance in (False, True):
        rows = stats[enhance]
        errs = np.array([r[0] for r in rows])
        label = "with enhancement" if enhance else "own direction only"
        print(f"  {label:<22} windows {len(rows)}, "
              f"within 5 s: {int((errs <= 5.0).sum())}, "
              f"within 10 s: {int((errs <= 10.0).sum())}, "
              f"median input samples: {np.median([r[2] for r in rows]):.0f}")

    hits_off = (np.array([r[0] for r in stats[False]]) <= 10.0).sum()
    hits_on = (np.array([r[0] for r in stats[True]]) <= 10.0).sum()
    print(f"\n  paper's claim: mirroring the perpendicular direction makes the")
    print(f"  sparse direction identifiable; measured {hits_off} -> {hits_on} "
          f"windows within 10 s")
    assert hits_on > hits_off, "enhancement must add accurate windows"

    p, q = partitions[(0, "NS")], partitions[(0, "EW")]
    benchmark(_attempt, p, q, times[-1], True)
