"""Shared fixtures for the reproduction benches.

Each bench regenerates one table or figure of the paper and prints the
paper-vs-measured comparison.  The expensive artifacts (city
simulations and their traces) are session-scoped and shared.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import simulate_and_partition
from repro.scenario import shenzhen_scenario, small_scenario


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


@pytest.fixture(scope="session")
def shenzhen():
    """The Table II scenario (ground truth for Figs. 12-14)."""
    return shenzhen_scenario()


@pytest.fixture(scope="session")
def shenzhen_data(shenzhen):
    """(trace, partitions) for 5 simulated hours of the Table II city."""
    return simulate_and_partition(shenzhen, 0.0, 5 * 3600.0, seed=42)


@pytest.fixture(scope="session")
def small_city():
    return small_scenario(cycle_s=98.0, ns_red_s=39.0, rate_per_hour=400.0)


@pytest.fixture(scope="session")
def small_city_data(small_city):
    return simulate_and_partition(small_city, 0.0, 7200.0, seed=7)
