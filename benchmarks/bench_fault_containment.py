"""Fault-containment bench: a citywide run with ~10% poisoned lights.

The paper's "easily paralleled" fan-out only scales if one degenerate
partition cannot sink the run — at city scale, sparse or corrupt
per-light inputs are the common case, not the exception.  This bench
poisons ~10% of the Table II city's partitions (corrupt parallel
arrays, the kind of garbage a broken map-matching export produces),
runs ``identify_many`` under the real process pool, and prints the
failure taxonomy and stage wall-time breakdown from the
:class:`~repro.obs.report.RunReport`.

Asserted contract (the acceptance criterion of the containment issue):

* the run completes despite the poison;
* every poisoned light appears in the failure map typed with exception
  class + pipeline stage;
* healthy lights get the same estimates as in a clean run;
* the exported JSON carries per-stage wall time and counter totals.

Note on the taxonomy counts: §V.B enhancement reads the perpendicular
partition, so a poisoned partition can also fail its sparse
perpendicular neighbour at the ``samples`` stage — the taxonomy may
show slightly more ``samples/ValueError`` entries than lights poisoned.
Both failures are contained and correctly attributed; the neighbour's
input genuinely is corrupt.
"""

import json

import numpy as np
import pytest

from conftest import banner
from repro.core import identify_many
from repro.matching.partition import LightPartition
from repro.obs import RunReport, format_light_key


def poison(p: LightPartition) -> LightPartition:
    """Corrupt the partition's parallel arrays (length mismatch)."""
    return LightPartition(
        p.intersection_id, p.approach, p.trace, p.segment_id, np.empty(3)
    )


def test_fault_containment_citywide(shenzhen_data, tmp_path):
    _, partitions = shenzhen_data
    at_time = 14400.0
    keys = sorted(partitions)
    n_poison = max(1, round(0.1 * len(keys)))
    bad = keys[::max(1, len(keys) // n_poison)][:n_poison]

    city = dict(partitions)
    for k in bad:
        city[k] = poison(city[k])

    report = RunReport()
    ests, fails = identify_many(city, at_time, report=report)

    banner(
        f"Fault containment: {len(keys)} lights, {len(bad)} poisoned "
        f"({100 * len(bad) / len(keys):.0f}%)"
    )
    print(f"  estimates: {len(ests)}   failures: {len(fails)}")
    print()
    print(report.summary())

    # Run completed; every poisoned light is in the failure map, typed.
    for k in bad:
        assert k in fails
        assert fails[k].error_type == "ValueError"
        assert fails[k].stage == "samples"

    # Healthy lights are unaffected by their poisoned neighbours.
    clean, _ = identify_many(partitions, at_time)
    for k in clean:
        if k in bad:
            continue
        assert k in ests
        assert ests[k].cycle_s == pytest.approx(clean[k].cycle_s)

    # The JSON export carries per-stage wall time and counter totals.
    path = tmp_path / "report.json"
    report.save(path)
    doc = json.loads(path.read_text())
    assert doc["lights"]["failed"] == len(fails)
    assert doc["stages"] and all(v["wall_s"] >= 0.0 for v in doc["stages"].values())
    assert doc["counters"]["samples_primary"] > 0
    for k in bad:
        assert doc["failures"][format_light_key(k)]["stage"] == "samples"
    print(f"\n  report JSON: {len(path.read_text()):,} bytes, "
          f"{len(doc['stages'])} stages, {len(doc['counters'])} counters")
