"""Fig. 13 — ground truth vs identified values at one time point.

The paper compares recorded ground truth with the system's output for
its monitored lights at a randomly selected instant (15:22 Dec 05,
2014), finding cycle and red errors below 5 s on average.  We reproduce
the snapshot over the Table II scenario's lights (two signal groups per
intersection; the paper's 36 heads pair up into the same 18 groups).
"""

import numpy as np

from conftest import banner
from repro._util import circular_diff
from repro.core import identify_many


SNAPSHOT_T = 4.5 * 3600.0  # one randomly chosen instant of the simulated window


def test_fig13_snapshot(benchmark, shenzhen, shenzhen_data):
    _, partitions = shenzhen_data

    estimates, failures = benchmark.pedantic(
        identify_many, args=(partitions, SNAPSHOT_T),
        kwargs=dict(serial=False), rounds=1, iterations=1,
    )

    banner(f"Fig. 13 — ground truth vs identified (t = {SNAPSHOT_T / 3600:.2f} h)")
    print(f"  {'light':<10} {'cycle GT/est':>16} {'red GT/est':>15} "
          f"{'r2g err':>8}")
    cycle_errs, red_errs = [], []
    for key in sorted(partitions):
        iid, app = key
        gt = shenzhen.truth_at(iid, app, SNAPSHOT_T)
        if key not in estimates:
            print(f"  {str(key):<10} {'(insufficient data)':>16}")
            continue
        e = estimates[key]
        dr2g = float(circular_diff(
            e.schedule.offset_s + e.schedule.red_s,
            gt.offset_s + gt.red_s, gt.cycle_s,
        ))
        cycle_errs.append(abs(e.cycle_s - gt.cycle_s))
        red_errs.append(abs(e.red_s - gt.red_s))
        print(f"  {str(key):<10} {gt.cycle_s:>7.0f}/{e.cycle_s:<7.1f} "
              f"{gt.red_s:>6.0f}/{e.red_s:<7.1f} {dr2g:>+7.1f}s")

    locked = [c for c in cycle_errs if c <= 5.0]
    red_locked = [r for c, r in zip(cycle_errs, red_errs) if c <= 5.0]
    print(f"\n  paper: cycle and red errors < 5 s on average at the snapshot")
    print(f"  measured (cycle-locked lights, n={len(locked)}): "
          f"mean cycle err {np.mean(locked):.1f} s, "
          f"mean red err {np.mean(red_locked):.1f} s")
    assert len(locked) >= 8, "most busy lights must lock the cycle"
    assert np.mean(locked) <= 5.0
    assert np.mean(red_locked) <= 10.0
