"""Ablation — error-filtering stages of the red-duration estimator
(DESIGN.md #5): none / cycle-cap only / + passenger filter / + border
interval.  Shows why the paper needs each of §VI.A's defences against
curbside-stop contamination.
"""

import numpy as np
import pytest

from conftest import banner
from repro.core.redlight import estimate_red_duration
from repro.core.stops import extract_stops
from repro.core.pipeline import measured_mean_interval


def naive_longest(durations, cycle):
    """No filtering at all: take the longest observed stop."""
    return float(durations.max()) if durations.size else np.nan


def capped_longest(durations, cycle):
    """Cycle-cap only (paper's stage 1)."""
    d = durations[durations <= cycle]
    return float(d.max()) if d.size else np.nan


def test_ablation_red_filters(benchmark, small_city, small_city_data):
    _, partitions = small_city_data

    banner("Ablation — red-duration filtering stages")
    print(f"  {'stage':<34} {'median |err|':>12}")
    rows = {"naive longest stop": [], "cycle-cap only": [],
            "+passenger filter": [], "+border interval (full)": []}
    for key in sorted(partitions):
        iid, app = key
        gt = small_city.truth_at(iid, app, 3600.0)
        stops = extract_stops(partitions[key])
        iv = measured_mean_interval(partitions[key])
        d_all = stops.duration_s
        d_pass = stops.subset(~stops.passenger_changed).duration_s

        rows["naive longest stop"].append(abs(naive_longest(d_all, gt.cycle_s) - gt.red_s))
        rows["cycle-cap only"].append(abs(capped_longest(d_all, gt.cycle_s) - gt.red_s))
        rows["+passenger filter"].append(abs(capped_longest(d_pass, gt.cycle_s) - gt.red_s))
        est = estimate_red_duration(d_pass, gt.cycle_s, mean_interval_s=iv)
        rows["+border interval (full)"].append(abs(est.red_s - gt.red_s))

    meds = {}
    for name, errs in rows.items():
        meds[name] = float(np.nanmedian(errs))
        print(f"  {name:<34} {meds[name]:>10.1f} s")

    print("\n  each stage must tighten the estimate (paper's Fig. 9 argument)")
    assert meds["+border interval (full)"] <= meds["cycle-cap only"]
    assert meds["+border interval (full)"] <= meds["naive longest stop"]

    key = max(partitions, key=lambda k: len(partitions[k]))
    stops = extract_stops(partitions[key])
    d = stops.subset(~stops.passenger_changed).duration_s
    benchmark(estimate_red_duration, d, 98.0,
              mean_interval_s=measured_mean_interval(partitions[key]))
