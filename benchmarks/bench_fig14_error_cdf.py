"""Fig. 14 — CDFs of identification errors over repeated random runs.

The paper repeats identification at 1000+ random time spots over all
monitored lights and reports three CDFs:

* cycle length — bimodal: "either very accurate, or has notable
  errors"; about 7 % of runs err by more than 10 s;
* red-light length — ~80 % of errors within 6 s;
* signal-change time — ~80 % of errors within 6 s.

We regenerate the sweep on the Table II scenario.  Our substrate is
sparser than the paper's full fleet at the minor intersections, so the
gross-error mode is heavier; the reproduction targets are the *shape*
(bimodal cycle CDF with a near-exact mode, red/change errors
concentrated under the yellow-light 5-6 s tolerance for cycle-locked
lights).
"""

import numpy as np

from conftest import banner
from repro.eval import cdf_at, evaluate_at_times, fraction_within

TIMES = tuple(np.arange(9000.0, 18000.0 + 1, 750.0))  # 13 random-ish spots
CHECKPOINTS = np.array([1.0, 2.0, 4.0, 6.0, 10.0, 20.0])


def test_fig14_error_cdfs(benchmark, shenzhen, shenzhen_data):
    _, partitions = shenzhen_data

    result = benchmark.pedantic(
        evaluate_at_times,
        args=(partitions, shenzhen.truth_at, TIMES),
        rounds=1, iterations=1,
    )

    banner(f"Fig. 14 — error CDFs over {len(result)} (light × time) runs "
           f"({result.n_failures} data-starved)")
    rows = [
        ("cycle length", result.cycle_errors),
        ("red light length", result.red_errors),
        ("signal change time", result.change_errors),
    ]
    header = f"  {'|error| <=':<20}" + "".join(
        f"{c:>7.0f}s" for c in CHECKPOINTS
    )
    print(header)
    for name, errs in rows:
        cdf = cdf_at(np.nan_to_num(errs, nan=np.inf), CHECKPOINTS)
        print(f"  {name:<20}" + "".join(f"{100 * v:>7.0f}%" for v in cdf))

    cyc = result.cycle_errors
    print("\n  paper: cycle CDF bimodal, ~7% of errors > 10 s;"
          " red & change ~80% within 6 s")
    # bimodality: among valid runs, a large near-exact mode plus a gross mode
    valid = cyc[~np.isnan(cyc)]
    near_exact = np.mean(np.abs(valid) <= 2.0)
    gross = np.mean(np.abs(valid) > 10.0)
    mid = np.mean((np.abs(valid) > 2.0) & (np.abs(valid) <= 10.0))
    print(f"  cycle modes: {100 * near_exact:.0f}% within 2 s, "
          f"{100 * mid:.0f}% between 2-10 s, {100 * gross:.0f}% beyond 10 s")
    assert near_exact >= 0.45, "near-exact mode must dominate"
    assert mid <= 0.25, "cycle errors are bimodal: few in-between values"

    # conditioned on a locked cycle, red/change match the paper's band
    locked = [s for s in result.samples if s.errors and abs(s.errors.cycle_s) <= 5.0]
    red_l = [s.errors.red_s for s in locked]
    chg_l = [s.errors.change_s for s in locked]
    print(f"  cycle-locked subset (n={len(locked)}): "
          f"red within 6 s: {100 * fraction_within(red_l, 6.0):.0f}%, "
          f"change within 6 s: {100 * fraction_within(chg_l, 6.0):.0f}%")
    assert fraction_within(chg_l, 6.0) >= 0.6
    assert fraction_within(red_l, 10.0) >= 0.5
