"""Figs. 15/16 — light-aware navigation on the simulated grid.

The paper's demo: a grid road network (shortest segment 1 km), one
light per intersection, cycles drawn from 120–300 s with red = green.
Conventional shortest-time navigation (driving time only) is compared
with the enumerate-and-re-plan navigator consuming real-time schedules;
the saving is small at short distances and grows to ≈ 15 % overall.
"""

import numpy as np

from conftest import banner
from repro.navigation import NavScenario, run_navigation_experiment


def test_fig16_navigation_savings(benchmark):
    buckets = benchmark.pedantic(
        run_navigation_experiment,
        kwargs=dict(
            scenario=NavScenario(n_cols=6, n_rows=6),
            hop_distances=(2, 3, 4, 5, 6, 7, 8),
            trips_per_distance=16,
            seed=7,
        ),
        rounds=1, iterations=1,
    )

    banner("Fig. 16 — shortest-time navigation performance")
    print("  distance  n   baseline     aware    saving")
    for b in buckets:
        print("  " + b.row())

    savings = np.array([b.saving_fraction for b in buckets])
    dists = np.array([b.distance_km for b in buckets])
    weights = np.array([b.n_trips for b in buckets], dtype=float)
    overall = float(np.average(savings, weights=weights))
    print(f"\n  paper: small gains at short distances, ~15% saving overall")
    print(f"  measured overall saving: {100 * overall:.1f}%")

    # who wins: the light-aware navigator, everywhere
    assert (savings >= -0.01).all()
    # by roughly what factor: double-digit percentage at scale
    assert 0.05 <= overall <= 0.35
    # where the crossover falls: long trips benefit more than short ones
    assert savings[dists >= 5.0].mean() > savings[dists <= 3.0].mean()


def test_fig16_dijkstra_extension(benchmark):
    """Ablation: the paper notes its enumeration is non-polynomial; the
    time-dependent Dijkstra extension is optimal and polynomial.  It
    must match or beat the enumeration at every distance."""
    common = dict(
        scenario=NavScenario(n_cols=6, n_rows=6),
        hop_distances=(3, 6),
        trips_per_distance=10,
        seed=11,
    )
    enum_buckets = run_navigation_experiment(strategy="enumerate", **common)
    dij_buckets = benchmark.pedantic(
        run_navigation_experiment, kwargs=dict(strategy="dijkstra", **common),
        rounds=1, iterations=1,
    )

    banner("Fig. 16 ablation — enumeration (paper) vs time-dependent Dijkstra")
    for eb, db in zip(enum_buckets, dij_buckets):
        print(f"  {eb.distance_km:.0f} km: enumerate {eb.aware_mean_s:.1f}s"
              f"  dijkstra {db.aware_mean_s:.1f}s")
        assert db.aware_mean_s <= eb.aware_mean_s * 1.02
