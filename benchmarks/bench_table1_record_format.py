"""Table I — the 12-field taxi record wire format.

Regenerates the format inventory and measures serialize/parse
throughput on generated traces (the paper's fleet writes ~80 M of these
per day, ≈ 10 GB; throughput is what makes that tractable).
"""

import io

import numpy as np

from conftest import banner
from repro.trace import format_record, parse_record, read_trace, write_trace

TABLE1 = [
    (1, "Car plate number", "STRING"),
    (2, "Longitude", "longitude x1000000"),
    (3, "Latitude", "latitude x1000000"),
    (4, "Report time", "YYYY-MM-DD HH:mm:ss"),
    (5, "Onboard device ID", "NUMBER"),
    (6, "Driving speed", "km/h"),
    (7, "Car heading", "degree to north, clockwise"),
    (8, "GPS condition", "0/1"),
    (9, "Overspeed warning", "1: overspeed"),
    (10, "SIM card number", "STRING"),
    (11, "Passenger condition", "0: vacant; 1: occupied"),
    (12, "Taxi body color", "yellow, blue, etc"),
]


def test_table1_record_format(benchmark, small_city_data):
    trace, _ = small_city_data
    records = trace.time_window(0.0, 1200.0).to_records()
    lines = [format_record(r) for r in records]

    banner("Table I — taxi record format (field inventory + round trip)")
    for idx, desc, fmt in TABLE1:
        print(f"  {idx:>2}  {desc:<22} {fmt}")
    sample = lines[0].split(",")
    assert len(sample) == 12, "wire format must carry exactly the 12 Table I fields"
    print(f"\n  example line ({len(records)} records checked):")
    print(f"  {lines[0]}")

    # round-trip integrity across the batch
    for rec, line in zip(records[:500], lines[:500]):
        back = parse_record(line)
        assert back.plate == rec.plate
        assert abs(back.longitude - rec.longitude) <= 1e-6
        assert abs(back.time_s - rec.time_s) <= 0.5

    def roundtrip():
        buf = io.StringIO()
        write_trace(records, buf)
        buf.seek(0)
        return read_trace(buf)

    out = benchmark(roundtrip)
    rate = len(records) / benchmark.stats.stats.mean
    print(f"  round-trip throughput: {rate:,.0f} records/s "
          f"(~80 M/day needs {80e6 / 86400:,.0f}/s)")
    assert len(out) == len(records)
