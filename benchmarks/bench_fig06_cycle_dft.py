"""Fig. 6 — traffic-light periodicity via interpolation + DFT.

The paper's worked example: one hour of data at a light whose true
cycle is 98 s; the strongest DFT bin is 37 cycles/hour → 3600/37 ≈ 97 s
(1 s error).  We regenerate the exact workflow — raw sparse reports →
1 Hz spline regularization → magnitude spectrum → Eq. 2 — on a light
simulated with a 98 s cycle.
"""

import numpy as np
import pytest

from conftest import banner
from repro.core.cycle import CycleConfig, identify_cycle_from_samples, spectrum
from repro.core.interpolation import regularize
from repro.core.pipeline import _window_samples

TRUE_CYCLE = 98.0
WINDOW = 3600.0


@pytest.fixture(scope="module")
def one_light(small_city_data):
    _, partitions = small_city_data
    # the busiest partition of the test city (whose lights run 98 s)
    key = max(partitions, key=lambda k: len(partitions[k]))
    return partitions[key]


def test_fig06_interpolation_and_dft(benchmark, one_light):
    t, v = _window_samples(one_light, 7200.0 - WINDOW, 7200.0, 150.0)

    banner("Fig. 6 — cycle identification by interpolation + DFT")
    print(f"  raw samples in the 1 h window: {t.size} "
          f"(data missing + redundancy, as in Fig. 6(a))")

    grid, sig = regularize(t, v, 7200.0 - WINDOW, 7200.0, kind="spline")
    print(f"  regularized to {sig.size} x 1 Hz points (Fig. 6(b)); "
          f"negative excursions allowed: min={sig.min():.1f} km/h")

    periods, mag = spectrum(sig)
    in_band = (periods >= 40.0) & (periods <= 320.0)
    best_bin = int(np.argmax(np.where(in_band, mag, -np.inf))) + 1
    plain_cycle = WINDOW / best_bin
    print(f"  strongest in-band DFT bin: {best_bin} cycles/hour "
          f"-> Eq.2 cycle = 3600/{best_bin} = {plain_cycle:.1f} s (Fig. 6(c))")
    print(f"  paper example: bin 37 -> 97 s vs ground truth 98 s")

    est = benchmark(
        identify_cycle_from_samples,
        t, v, 7200.0 - WINDOW, 7200.0, CycleConfig(),
    )
    print(f"  refined estimate: {est.cycle_s:.2f} s "
          f"(truth {TRUE_CYCLE:.0f} s, error {est.cycle_s - TRUE_CYCLE:+.2f} s, "
          f"quality z={est.quality:.1f})")

    assert abs(plain_cycle - TRUE_CYCLE) <= 6.0, "raw DFT within leakage bound"
    assert abs(est.cycle_s - TRUE_CYCLE) <= 2.0, "refined within paper's 1 s-class error"
