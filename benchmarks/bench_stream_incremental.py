"""Incremental-vs-recompute bench for the streaming backend.

A live deployment sees a trickle: each minute only the lights along the
currently-reporting taxis' routes receive records.  The streaming
backend's value proposition is that a per-chunk update re-identifies
only those dirty lights, while a naive consumer would re-run the whole
city.  This bench pins that claim on a 128-light synthetic city with
bursty rotating coverage (16 groups of 8 lights; each group reports one
minute in sixteen), replayed in 1-minute chunks:

* **incremental** — one ``StreamSession`` per-chunk ingest+refresh
  (only the ~16 dirty lights re-run; report trails spill one chunk past
  each group's active minute, so two groups are typically live);
* **full recompute** — same appends, but the per-light result cache is
  dropped before every evaluation, forcing all 128 lights through the
  batched kernels each chunk.

Both paths produce bit-for-bit identical estimates (the replay-parity
contract); what differs — and what is asserted at ≥ 5x — is the mean
per-chunk wall time.
"""

import time

import numpy as np

from conftest import banner
from repro.scenario import synthetic_lights, synthetic_partitions
from repro.stream import StreamSession, split_by_time

HORIZON_S = 1920.0
CHUNK_S = 60.0
N_GROUPS = 16
MIN_SPEEDUP = 5.0


def _bursty_city():
    """128 lights; group ``iid % 16`` reports during minutes ``m % 16 == g``."""
    lights = synthetic_lights(64, seed=21)
    active = {}
    for light in lights:
        g = light.intersection_id % N_GROUPS
        active[light.key] = [
            (60.0 * m, 60.0 * (m + 1))
            for m in range(int(HORIZON_S // 60.0))
            if m % N_GROUPS == g
        ]
    parts = synthetic_partitions(
        lights, 0.0, HORIZON_S, rate_per_hour=1600.0, seed=21, active=active
    )
    return lights, parts


def test_incremental_update_beats_full_recompute():
    lights, parts = _bursty_city()
    edges = list(np.arange(0.0, HORIZON_S + 1.0, CHUNK_S))
    chunks = split_by_time(parts, edges)

    incremental = StreamSession(monitor=False)
    recompute = StreamSession(monitor=False)
    t_inc, t_full = [], []
    dirty_counts = []
    # the first rotation is warmup: every chunk introduces brand-new
    # lights, so there is no steady incremental state to measure yet
    warmup = N_GROUPS
    for i, (chunk, hi) in enumerate(zip(chunks, edges[1:])):
        at = float(hi)

        t0 = time.perf_counter()
        update = incremental.ingest(chunk, at_time=at)
        dt_inc = time.perf_counter() - t0

        t0 = time.perf_counter()
        recompute.ingest(chunk, at_time=at, refresh=False)
        recompute._results.clear()  # force every light through refresh
        full = recompute.evaluate(at)
        dt_full = time.perf_counter() - t0

        if i >= warmup:
            t_inc.append(dt_inc)
            t_full.append(dt_full)
            dirty_counts.append(len(update.dirty))

    # replay parity: a final time-consistent snapshot of the streamed
    # session must agree exactly with the full-recompute session
    at = float(edges[-1])
    est_inc, fail_inc = incremental.evaluate(at)
    est_full, fail_full = recompute.evaluate(at)
    assert sorted(est_inc) == sorted(est_full)
    assert sorted(fail_inc) == sorted(fail_full)
    for key, est in est_full.items():
        assert est_inc[key].cycle_s == est.cycle_s

    mean_inc = float(np.mean(t_inc))
    mean_full = float(np.mean(t_full))
    speedup = mean_full / mean_inc

    banner("Streaming backend: incremental update vs full recompute")
    print(f"  city: {len(parts)} lights, {sum(len(p.trace) for p in parts.values()):,} "
          f"records, {len(chunks)} chunks of {CHUNK_S:.0f}s "
          f"({warmup} warmup chunks excluded)")
    print(f"  mean dirty lights per chunk: {np.mean(dirty_counts):.1f} "
          f"of {len(parts)}")
    print(f"  incremental update   {1e3 * mean_inc:8.1f} ms/chunk")
    print(f"  full recompute       {1e3 * mean_full:8.1f} ms/chunk")
    print(f"  speedup              {speedup:8.1f}x   (floor: {MIN_SPEEDUP:.0f}x)")

    assert speedup >= MIN_SPEEDUP, (
        f"incremental update only {speedup:.1f}x faster than full recompute"
    )
