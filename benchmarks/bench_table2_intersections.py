"""Table II — the nine monitored intersections and their record rates.

Regenerates the table from the scenario and verifies the simulated
trace reproduces the paper's record-rate *imbalance* (the busiest
intersection sees ~25× the records of the idlest).
"""

import numpy as np

from conftest import banner
from repro.scenario import TABLE2


def test_table2_intersections(benchmark, shenzhen, shenzhen_data):
    trace, partitions = shenzhen_data

    def measure_rates():
        out = {}
        for i in range(9):
            total = sum(
                len(partitions[(i, app)]) for app in ("NS", "EW")
                if (i, app) in partitions
            )
            span_h = (trace.t.max() - trace.t.min()) / 3600.0
            out[i] = total / span_h
        return out

    measured = benchmark(measure_rates)

    banner("Table II — monitored intersections (paper vs simulated)")
    print(f"  {'ID':>2} {'road name':<22} {'geo location':<18} "
          f"{'paper rec/h':>11} {'sim rec/h':>10}")
    for i, row in enumerate(TABLE2):
        print(f"  {row.id:>2} {row.name:<22} "
              f"{row.lon:.3f}, {row.lat:.3f}   "
              f"{row.records_per_hour:>11,} {measured[i]:>10,.0f}")

    paper = np.array([r.records_per_hour for r in TABLE2], dtype=float)
    sim = np.array([measured[i] for i in range(9)])

    paper_ratio = paper.max() / paper.min()
    sim_ratio = sim.max() / sim.min()
    corr = float(np.corrcoef(np.log(paper), np.log(sim))[0, 1])
    print(f"\n  busiest/idlest ratio: paper {paper_ratio:.1f}x, simulated {sim_ratio:.1f}x")
    print(f"  log-rate correlation (paper vs simulated): {corr:.3f}")

    assert np.argmax(sim) == np.argmax(paper) == 0  # ShenNan x WenJin busiest
    assert np.argmin(sim) == np.argmin(paper) == 4  # BaGua x BaGuaSan idlest
    assert sim_ratio > 10.0, "the imbalance must be preserved"
    assert corr > 0.9, "simulated rates must track Table II"
