"""Extension bench — how much taxi coverage does identification need?

The paper's Table II spans 198–5071 records/hour and its Fig. 14 CDF
mixes all of them.  This bench isolates the coverage axis: one light,
identical schedule, swept arrival rates — reporting the cycle hit rate
per coverage level and the approximate records/hour threshold where
identification becomes reliable.  This is the number a practitioner
needs before deploying the system on their own fleet.
"""

import numpy as np
import pytest

from conftest import banner
from repro.core import PipelineConfig, identify_light
from repro.core.signal_types import InsufficientDataError
from repro.lights.intersection import SignalPlan, attach_signals_to_network
from repro.matching import match_trace, partition_by_light
from repro.network import grid_network
from repro.sim import ApproachConfig, CitySimulation
from repro.trace import TraceGenerator

CYCLE, NS_RED = 98.0, 39.0
RATES = (30.0, 60.0, 120.0, 240.0, 480.0)
TIMES = tuple(np.arange(7200.0, 14400.0 + 1, 1800.0))


def run_rate(rate: float, seed: int):
    net = grid_network(2, 2, 500.0)
    plans = {i: [SignalPlan(CYCLE, NS_RED, offset_s=17.0 * i)] for i in range(4)}
    signals = attach_signals_to_network(net, plans)
    rates = {s.id: rate for s in net.segments}
    sim = CitySimulation(net, signals, rates, ApproachConfig(segment_length_m=400.0))
    res = sim.run(0.0, 4 * 3600.0, seed=seed)
    trace = TraceGenerator(net).generate(res, rng=np.random.default_rng(seed + 1))
    parts = partition_by_light(match_trace(trace, net), net)

    hits = attempts = 0
    rec_rates = []
    for key, p in parts.items():
        rec_rates.append(p.records_per_hour())
        iid, app = key
        perp = parts.get((iid, "EW" if app == "NS" else "NS"))
        for at in TIMES:
            attempts += 1
            try:
                est = identify_light(p, at, perpendicular=perp,
                                     config=PipelineConfig())
            except InsufficientDataError:
                continue
            if abs(est.cycle_s - CYCLE) <= 3.0:
                hits += 1
    return hits / max(attempts, 1), float(np.mean(rec_rates))


def test_coverage_threshold(benchmark):
    banner("Extension — identification reliability vs taxi coverage")
    print(f"  {'veh/h/approach':>15} {'records/h/light':>16} {'cycle hit rate':>15}")
    curve = []
    for rate in RATES:
        hit_rate, rec_rate = run_rate(rate, seed=13)
        curve.append((rec_rate, hit_rate))
        print(f"  {rate:>15.0f} {rec_rate:>16.0f} {100 * hit_rate:>14.0f}%")

    rec = np.array([c[0] for c in curve])
    hit = np.array([c[1] for c in curve])
    print("\n  reliability must rise with coverage (the Table II story)")
    assert hit[-1] > hit[0], "dense coverage must beat sparse"
    assert hit[-1] >= 0.8, "dense lights must be reliably identifiable"

    crossings = np.nonzero(hit >= 0.8)[0]
    if crossings.size:
        print(f"  ~80% reliability reached near {rec[crossings[0]]:.0f} "
              f"records/hour per light")

    benchmark.pedantic(run_rate, args=(RATES[0], 13), rounds=1, iterations=1)
