"""Fig. 10 — data superposition: merging cycles into one.

The paper's example: cycle 98 s (39 red + 59 green), three consecutive
cycles of sparse taxi reports are folded modulo the cycle; the red and
green pattern only becomes visible after superposition.  We quantify
that: the folded profile's red/green speed contrast must exceed the
unfolded windows' contrast, and grows with the number of folded cycles.
"""

import numpy as np
import pytest

from conftest import banner
from repro.core.superposition import cycle_profile, fold_samples
from repro.core.pipeline import _window_samples

CYCLE = 98.0
RED = 39.0


def contrast(profile, g2r_in_cycle, red_s):
    """Mean green speed minus mean red speed of a folded profile."""
    idx = np.arange(profile.size)
    in_red = ((idx - g2r_in_cycle) % CYCLE) < red_s
    if in_red.all() or (~in_red).any() is False:
        return 0.0
    return float(np.nanmean(profile[~in_red]) - np.nanmean(profile[in_red]))


def test_fig10_superposition_contrast(benchmark, small_city, small_city_data):
    _, partitions = small_city_data
    key = max(partitions, key=lambda k: len(partitions[k]))
    p = partitions[key]
    gt = small_city.truth_at(*key, 7200.0)

    banner(f"Fig. 10 — superposition (light {key}, cycle 98 = 39 red + 59 green)")
    t1 = 7200.0
    contrasts, coverage = {}, {}
    for n_cycles in (3, 9, 18):
        t0 = t1 - n_cycles * CYCLE
        t, v = _window_samples(p, t0, t1, 150.0)
        profile = cycle_profile(t, v, CYCLE, t0)
        # coverage: in-cycle seconds directly observed (before the
        # circular interpolation fills the gaps)
        filled = np.unique(np.minimum(np.mod(t - t0, CYCLE).astype(int), 97)).size
        coverage[n_cycles] = filled / 98.0
        g2r = (gt.offset_s - t0) % CYCLE
        c = contrast(profile, g2r, gt.red_s)
        contrasts[n_cycles] = c
        print(f"  {n_cycles:>2} cycles folded: {t.size:>4} samples, "
              f"coverage {100 * coverage[n_cycles]:.0f}% of the cycle, "
              f"red/green contrast {c:.1f} km/h")
    print("  paper: the red/green pattern only emerges after superposition")
    assert contrasts[18] > 2.0, "folded profile must reveal the red/green pattern"
    # superposition's mechanism: folding more cycles observes more of
    # the cycle directly (contrast per-instance is noisy; coverage is not)
    assert coverage[18] > coverage[9] > coverage[3]

    t, v = _window_samples(p, 0.0, 7200.0, 150.0)
    benchmark(fold_samples, t, v, CYCLE)
