"""Ablation — interpolation kind for §V.A regularization.

The paper chooses spline interpolation "to obtain a smoother signal";
this bench quantifies the choice against linear and zero-order-hold on
the cycle-identification task (DESIGN.md ablation #1).
"""

import numpy as np
import pytest

from conftest import banner
from repro.core.cycle import CycleConfig, identify_cycle_from_samples
from repro.core.pipeline import _window_samples
from repro.core.signal_types import InsufficientDataError

KINDS = ("spline", "linear", "previous")
TIMES = tuple(npeals for npeals in np.arange(3600.0, 7200.0 + 1, 600.0))


def test_ablation_interpolation_kind(benchmark, small_city, small_city_data):
    _, partitions = small_city_data

    banner("Ablation — interpolation kind (spline vs linear vs hold)")
    hits = {}
    for kind in KINDS:
        cfg = CycleConfig(kind=kind)
        errs = []
        for key in sorted(partitions):
            p = partitions[key]
            for at in TIMES:
                t, v = _window_samples(p, at - 1800.0, at, 150.0)
                try:
                    est = identify_cycle_from_samples(t, v, at - 1800.0, at, cfg)
                    errs.append(abs(est.cycle_s - 98.0))
                except InsufficientDataError:
                    errs.append(np.inf)
        errs = np.array(errs)
        hits[kind] = float((errs <= 3.0).mean())
        print(f"  {kind:<10} windows {errs.size}, within 3 s: "
              f"{100 * hits[kind]:.0f}%, median err "
              f"{np.median(errs[np.isfinite(errs)]):.2f} s")

    print("\n  paper's choice (spline) must be competitive with alternatives")
    assert hits["spline"] >= max(hits.values()) - 0.15

    key = max(partitions, key=lambda k: len(partitions[k]))
    t, v = _window_samples(partitions[key], 5400.0, 7200.0, 150.0)
    benchmark(identify_cycle_from_samples, t, v, 5400.0, 7200.0, CycleConfig())
