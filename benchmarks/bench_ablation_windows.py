"""Ablation — analysis window length for cycle identification
(DESIGN.md #4).  The paper uses "a time period of data (e.g., the past
30 minutes)" and its Fig. 6 example uses an hour; this bench sweeps the
window and shows the trade-off: longer windows sharpen the DFT grid but
accumulate more traffic drift.
"""

import numpy as np
import pytest

from conftest import banner
from repro.core import PipelineConfig, identify_many

WINDOWS = (900.0, 1800.0, 3600.0)
TIMES = (12600.0, 14400.0, 16200.0, 18000.0)


def test_ablation_window_length(benchmark, shenzhen, shenzhen_data):
    _, partitions = shenzhen_data

    banner("Ablation — cycle window length")
    results = {}
    for w in WINDOWS:
        cfg = PipelineConfig(window_s=w)
        errs, fails = [], 0
        for at in TIMES:
            ests, failures = identify_many(partitions, at, config=cfg)
            fails += len(failures)
            for key, est in ests.items():
                gt = shenzhen.truth_at(key[0], key[1], at)
                errs.append(abs(est.cycle_s - gt.cycle_s))
        errs = np.array(errs)
        results[w] = errs
        print(f"  window {w / 60:>4.0f} min: n={errs.size:3d} "
              f"(+{fails} data-starved)  within 3 s: "
              f"{100 * (errs <= 3.0).mean():.0f}%  median {np.median(errs):.2f} s")

    best = max(results, key=lambda w: (results[w] <= 3.0).mean())
    print(f"\n  best window here: {best / 60:.0f} min "
          f"(the default is 30 min, the paper's own suggestion)")
    # the default must be within 15 points of the best choice
    default_rate = (results[1800.0] <= 3.0).mean()
    best_rate = (results[best] <= 3.0).mean()
    assert default_rate >= best_rate - 0.15

    benchmark.pedantic(
        identify_many, args=(partitions, TIMES[0]),
        kwargs=dict(config=PipelineConfig(window_s=1800.0)),
        rounds=1, iterations=1,
    )
