"""Ablation — change-point fusion weight (DESIGN.md extension).

The §VI.C detector is fused with a stop-end density: weight 0 is the
paper-literal sliding-window minimum, large weights trust stop events
alone.  This bench sweeps the weight and also ablates the red
refinement that the fused red→green instant enables.
"""

import numpy as np
import pytest

from conftest import banner
from repro._util import circular_diff
from repro.core import PipelineConfig, identify_many

TIMES = (12600.0, 14400.0, 16200.0, 18000.0)
WEIGHTS = (0.0, 0.25, 0.5, 1.0, 2.0)


def change_errors(shenzhen, partitions, cfg):
    errs = []
    for at in TIMES:
        ests, _ = identify_many(partitions, at, config=cfg)
        for key, est in ests.items():
            gt = shenzhen.truth_at(key[0], key[1], at)
            if abs(est.cycle_s - gt.cycle_s) > 5.0:
                continue  # change time only meaningful on a locked cycle
            errs.append(abs(float(circular_diff(
                est.schedule.offset_s + est.schedule.red_s,
                gt.offset_s + gt.red_s, gt.cycle_s,
            ))))
    return np.array(errs)


def test_ablation_fusion_weight(benchmark, shenzhen, shenzhen_data):
    _, partitions = shenzhen_data

    banner("Ablation — change-point fusion weight (0 = paper literal)")
    rates = {}
    for w in WEIGHTS:
        errs = change_errors(shenzhen, partitions, PipelineConfig(fusion_weight=w))
        rates[w] = float((errs <= 6.0).mean()) if errs.size else 0.0
        print(f"  weight {w:<5} n={errs.size:3d}  within 6 s: "
              f"{100 * rates[w]:.0f}%  median {np.median(errs):.2f} s")

    print("\n  fusing stop ends must beat the pure sliding-window minimum")
    assert max(rates[0.25], rates[0.5], rates[1.0]) >= rates[0.0]

    # red-refinement ablation rides on the same sweep
    banner("Ablation — red refinement from the fused change point")
    for refine in (False, True):
        cfg = PipelineConfig(refine_red=refine)
        errs = []
        for at in TIMES:
            ests, _ = identify_many(partitions, at, config=cfg)
            for key, est in ests.items():
                gt = shenzhen.truth_at(key[0], key[1], at)
                if abs(est.cycle_s - gt.cycle_s) > 5.0:
                    continue
                errs.append(abs(est.red_s - gt.red_s))
        errs = np.array(errs)
        print(f"  refine_red={str(refine):<5} n={errs.size:3d} "
              f"median |red err| {np.median(errs):.2f} s "
              f"within 6 s: {100 * (errs <= 6.0).mean():.0f}%")

    benchmark.pedantic(
        identify_many, args=(partitions, TIMES[0]),
        kwargs=dict(config=PipelineConfig()), rounds=1, iterations=1,
    )
