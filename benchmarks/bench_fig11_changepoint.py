"""Fig. 11 — signal change via the sliding-window minimum.

The paper's example: cycle 98 s, red 39 s, green 59 s; the moving
average of the superposed speed with a red-length window bottoms out at
the red window, and the detected green→red change lands at 44 s against
a ground truth of 41 s (3 s error).  We regenerate the detection for
every light of the test city and report the change-time error
distribution, plus the fused (stop-end) variant.
"""

import numpy as np
import pytest

from conftest import banner
from repro._util import circular_diff
from repro.core import identify_light, PipelineConfig
from repro.core.changepoint import find_signal_change
from repro.core.superposition import cycle_profile
from repro.core.pipeline import _window_samples


def test_fig11_change_point(benchmark, small_city, small_city_data):
    _, partitions = small_city_data

    banner("Fig. 11 — signal-change identification")
    print(f"  {'light':<10} {'GT r2g':>8} {'est r2g':>8} {'err':>6}")
    errs_literal, errs_fused = [], []
    for key in sorted(partitions):
        iid, app = key
        gt = small_city.truth_at(iid, app, 7200.0)
        p = partitions[key]
        anchor = 7200.0 - 1200.0
        t, v = _window_samples(p, anchor, 7200.0, 150.0)
        if t.size < 10:
            continue
        profile = cycle_profile(t, v, gt.cycle_s, anchor)
        # paper-literal: speed window only
        lit = find_signal_change(profile, gt.red_s, fusion_weight=0.0)
        gt_r2g = (gt.offset_s + gt.red_s - anchor) % gt.cycle_s
        e_lit = float(circular_diff(lit.red_to_green_s, gt_r2g, gt.cycle_s))
        errs_literal.append(abs(e_lit))
        # full pipeline (fusion + refinement), absolute comparison
        perp = partitions.get((iid, "EW" if app == "NS" else "NS"))
        est = identify_light(p, 7200.0, perpendicular=perp, config=PipelineConfig())
        e_fus = float(circular_diff(
            est.schedule.offset_s + est.schedule.red_s,
            gt.offset_s + gt.red_s,
            gt.cycle_s,
        ))
        errs_fused.append(abs(e_fus))
        print(f"  {str(key):<10} {gt_r2g:>7.1f}s "
              f"{est.schedule.red_to_green_in_cycle:>7.1f}s {e_fus:>+5.1f}s")

    print(f"\n  paper example error: 3 s (44 s detected vs 41 s truth)")
    print(f"  paper-literal sliding window: median {np.median(errs_literal):.1f} s")
    print(f"  fused (stop-end) pipeline:    median {np.median(errs_fused):.1f} s")
    assert np.median(errs_fused) <= 6.0, "80%-within-6s class accuracy expected"

    key = max(partitions, key=lambda k: len(partitions[k]))
    p = partitions[key]
    anchor = 7200.0 - 1200.0
    t, v = _window_samples(p, anchor, 7200.0, 150.0)
    gt = small_city.truth_at(*key, 7200.0)
    profile = cycle_profile(t, v, gt.cycle_s, anchor)
    benchmark(find_signal_change, profile, gt.red_s)
