"""Shard-backend scaling bench — zero-copy fan-out on a synthetic city.

The shard backend exists for exactly one workload: a city too large for
per-light process fan-out (pickling every partition dwarfs the kernel
time) identified in one shot.  This bench builds a synthetic city
(10k lights by default on >= 4-core hosts, smaller elsewhere), spills it
once, and sweeps worker counts, pinning three claims:

* **parity** — every worker count reproduces the batched backend's
  estimates bit-for-bit, and the same failure set;
* **zero-copy** — the store crosses the pool boundary as a metadata
  handle (< 1 MiB), not as column bytes, asserted from the
  ``ShardStats.common_bytes`` telemetry;
* **scaling** — on hosts with >= 4 cores, the best shard run beats the
  batched single-process baseline by >= 2.5x.  On smaller hosts the
  curve is reported, not asserted: process fan-out cannot beat a shared
  core.

Knobs: ``REPRO_SHARD_BENCH_LIGHTS`` overrides the city size and
``REPRO_SHARD_BENCH_JSON`` writes the measured curve as a JSON artifact
(used by the non-blocking CI slow job).
"""

import json
import os
import time

from conftest import banner
from repro.core.batch import identify_batch
from repro.core.shard import identify_shard
from repro.scenario.synthetic import synthetic_lights, synthetic_partitions
from repro.trace.store import PartitionStore

AT_TIME = 3000.0
SPEEDUP_FLOOR = 2.5
HANDLE_CEILING = 1 << 20  # 1 MiB: metadata, never column bytes


def _est_tuple(est):
    return (
        est.cycle_s,
        est.red_s,
        est.green_s,
        est.schedule.offset_s,
        est.change.red_to_green_s,
        est.change.green_to_red_s,
    )


def _city_size(cores):
    env = os.environ.get("REPRO_SHARD_BENCH_LIGHTS")
    if env is not None:
        return max(2, int(env))
    return 10_000 if cores >= 4 else 512


def test_shard_scaling_curve():
    cores = os.cpu_count() or 1
    n_lights = _city_size(cores)
    banner(f"Shard scaling ({n_lights} lights, host has {cores} core(s))")

    t0 = time.perf_counter()
    lights = synthetic_lights(n_lights // 2, seed=11)
    partitions = synthetic_partitions(lights, 0.0, 3600.0, seed=11)
    store = PartitionStore.from_partitions(partitions)
    print(f"  city: {len(store)} lights, {store.n_records} records, "
          f"{store.columns_nbytes / 1e6:.1f} MB of columns "
          f"(built in {time.perf_counter() - t0:.1f} s)")

    t0 = time.perf_counter()
    ref_est, ref_fail, _ = identify_batch(store, AT_TIME)
    t_batched = time.perf_counter() - t0
    print(f"  batched, 1 process   {t_batched:6.2f} s   1.00x   "
          f"({len(ref_est)} ok, {len(ref_fail)} failed)")

    sweep = [w for w in (1, 2, 4, 8) if w <= max(cores, 2)]
    curve = []
    for workers in sweep:
        t0 = time.perf_counter()
        est, fail, _tels, stats = identify_shard(
            store, AT_TIME, max_workers=workers
        )
        t_shard = time.perf_counter() - t0

        # parity: bit-for-bit with the batched reference, at any width
        assert sorted(est) == sorted(ref_est), f"estimate keys differ @{workers}w"
        assert sorted(fail) == sorted(ref_fail), f"failure keys differ @{workers}w"
        for key in ref_est:
            assert _est_tuple(est[key]) == _est_tuple(ref_est[key]), key

        # zero-copy: the pool ships a handle, not the columns
        handle = stats[0].common_bytes
        assert all(s.common_bytes == handle for s in stats)
        assert handle < HANDLE_CEILING, f"handle ballooned to {handle} bytes"
        assert store.columns_nbytes > 10 * handle
        assert sum(s.n_lights for s in stats) == len(store)

        speedup = t_batched / t_shard
        curve.append({
            "workers": workers,
            "shards": len(stats),
            "wall_s": t_shard,
            "speedup": speedup,
            "handle_bytes": handle,
        })
        print(f"  shard, {workers} worker(s)   {t_shard:6.2f} s   "
              f"{speedup:4.2f}x   ({len(stats)} shards, "
              f"{handle} handle bytes)")

    best = max(c["speedup"] for c in curve)
    print(f"  best shard speedup over batched: {best:.2f}x")

    out_path = os.environ.get("REPRO_SHARD_BENCH_JSON")
    if out_path:
        payload = {
            "n_lights": len(store),
            "n_records": store.n_records,
            "columns_nbytes": store.columns_nbytes,
            "cores": cores,
            "batched_s": t_batched,
            "curve": curve,
            "best_speedup": best,
        }
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"  wrote {out_path}")

    if cores >= 4:
        assert best >= SPEEDUP_FLOOR, (
            f"shard backend reached only {best:.2f}x over batched on "
            f"{cores} cores; the zero-copy fan-out should clear "
            f"{SPEEDUP_FLOOR}x"
        )
    else:
        print(f"  (< 4 cores: {SPEEDUP_FLOOR}x floor reported, not asserted)")
