"""Fig. 9 — red-light duration from the stop-duration histogram.

The paper's worked example: cycle 106 s, mean sample interval 20.14 s,
ground-truth red 63 s; valid stop durations fill ~3 sample-interval
bins and the border-interval rule lands within a few seconds of 63.
We regenerate it with synthetic stop durations exactly matching the
figure's construction, then with stops extracted from simulated traces.
"""

import numpy as np
import pytest

from conftest import banner
from repro.core.redlight import estimate_red_duration
from repro.core.stops import extract_stops
from repro.core.pipeline import measured_mean_interval

PAPER_CYCLE = 106.0
PAPER_RED = 63.0
PAPER_INTERVAL = 20.14


def synthetic_durations(rng, n=400, error_frac=0.08):
    """Stop durations as in Fig. 9: waits uniform within the red,
    observed minus sampling slack, plus <10% longer errors."""
    waits = rng.uniform(2.0, PAPER_RED, n)
    obs = np.maximum(waits - rng.uniform(0.0, PAPER_INTERVAL, n) * 0.5, 1.0)
    errors = rng.uniform(PAPER_RED, PAPER_CYCLE, int(error_frac * n))
    return np.concatenate([obs, errors])


def test_fig09_border_interval(benchmark):
    rng = np.random.default_rng(20141205)
    durations = synthetic_durations(rng)

    est = benchmark(
        estimate_red_duration, durations, PAPER_CYCLE,
        mean_interval_s=PAPER_INTERVAL,
    )

    banner("Fig. 9 — red duration via the border-interval rule")
    print(f"  setup: cycle {PAPER_CYCLE:.0f} s, interval {PAPER_INTERVAL} s, "
          f"ground truth red {PAPER_RED:.0f} s")
    print(f"  histogram (bin = one sample interval): {est.bin_counts.tolist()}")
    print(f"  border bin: {est.border_bin} "
          f"[{est.bin_edges[est.border_bin]:.1f}, "
          f"{est.bin_edges[est.border_bin + 1]:.1f}) s")
    print(f"  estimated red: {est.red_s:.1f} s "
          f"(error {est.red_s - PAPER_RED:+.1f} s; paper lands within ~3 s)")
    print(f"  stops used {est.n_stops_used}, rejected beyond cycle {est.n_stops_rejected}")
    assert abs(est.red_s - PAPER_RED) <= 10.0


def test_fig09_on_simulated_stops(benchmark, small_city, small_city_data):
    _, partitions = small_city_data
    banner("Fig. 9 (simulated) — red duration from extracted stop events")
    print(f"  {'light':<10} {'GT red':>7} {'est red':>8} {'err':>6} {'stops':>6}")
    errors = []
    timed_once = False
    for key in sorted(partitions):
        iid, app = key
        gt = small_city.truth_at(iid, app, 3600.0)
        stops = extract_stops(partitions[key])
        stops = stops.subset(~stops.passenger_changed)
        iv = measured_mean_interval(partitions[key])
        if not timed_once:
            est = benchmark(
                estimate_red_duration, stops.duration_s, gt.cycle_s,
                mean_interval_s=iv,
            )
            timed_once = True
        else:
            est = estimate_red_duration(stops.duration_s, gt.cycle_s, mean_interval_s=iv)
        err = est.red_s - gt.red_s
        errors.append(abs(err))
        print(f"  {str(key):<10} {gt.red_s:>6.0f}s {est.red_s:>7.1f}s "
              f"{err:>+5.1f}s {len(stops):>6}")
    print(f"  median |error|: {np.median(errors):.1f} s "
          f"(paper: ~80% of red errors within 6 s)")
    assert np.median(errors) <= 12.0
