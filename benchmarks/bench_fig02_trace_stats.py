"""Fig. 2 — statistical analysis of the taxi trace.

(a) records per 10-minute slot across the day (unbalanced, shift dips);
(b) update-interval distribution (15/30/60 s peaks, mean ≈ 20.41 s);
(c) distance between consecutive updates (≈ 42.66 % stationary,
    moving mean ≈ 100.69 m);
(d) speed difference between consecutive updates (≈ N(0, 40) km/h).

Our substrate regenerates the same analyses from a day-profiled
simulation; the *shape* (multi-modal intervals, a large stationary
share, a zero-centered speed-difference bell) is the reproduction
target — absolute values depend on fleet parameters we only match
approximately.
"""

import numpy as np
import pytest

from conftest import banner
from repro.sim import DAY_PROFILE_SHENZHEN, ApproachConfig, CitySimulation
from repro.scenario import small_scenario
from repro.trace import (
    TraceGenerator,
    compute_statistics,
    consecutive_pairs,
    records_per_slot,
)


@pytest.fixture(scope="module")
def day_trace():
    """A day-profiled 4-hour window of city traffic (06:00–10:00)."""
    scn = small_scenario(rate_per_hour=600.0)
    from repro.sim import VehicleParams
    cfg = ApproachConfig(
        segment_length_m=400.0,
        params=VehicleParams(free_speed_mps=13.0, free_speed_sd=2.5),
    )
    sim = CitySimulation(
        scn.net,
        scn.signals,
        scn.rate_per_segment,
        config=cfg,
        hourly_profile=DAY_PROFILE_SHENZHEN,
    )
    res = sim.run(6 * 3600.0, 10 * 3600.0, seed=21)
    return TraceGenerator(scn.net).generate(res, rng=np.random.default_rng(3)), scn


def test_fig02_trace_statistics(benchmark, day_trace):
    trace, scn = day_trace

    stats = benchmark(compute_statistics, trace, scn.net.frame)
    pairs = consecutive_pairs(trace, scn.net.frame)
    slots, counts = records_per_slot(trace)

    banner("Fig. 2 — trace statistics (paper vs measured)")
    print(f"  records generated: {len(trace):,}  taxis: {stats.n_taxis:,}")

    print("\n  (a) records per 10-min slot (simulated 06:00-10:00):")
    active = counts[counts > 0]
    print(f"      slots active: {int((counts > 0).sum())}, "
          f"min/max active-slot count: {active.min()}/{active.max()}")
    assert active.max() > 1.3 * active.min(), "day profile must show imbalance"

    print("\n  (b) update interval   paper: mean 20.41 s, sd 20.54 s, peaks 15/30/60")
    print(f"      measured: mean {stats.mean_update_interval_s:.2f} s, "
          f"sd {stats.std_update_interval_s:.2f} s")
    hist, edges = np.histogram(pairs.dt_s, bins=np.arange(0, 92.5, 2.5))
    # 60 s taxis rarely emit two reports inside one approach traversal,
    # so only the 15/30 s peaks are reliably visible per-approach.
    for peak in (15.0, 30.0):
        k = int(peak // 2.5)
        neighborhood = hist[max(k - 3, 0):k + 3]
        assert hist[k] >= np.median(neighborhood), f"no peak near {peak} s"
    assert 8.0 <= stats.mean_update_interval_s <= 30.0

    print("\n  (c) distance between updates   paper: 42.66% stationary, "
          "moving mean 100.69 m")
    print(f"      measured: {100 * stats.stationary_fraction:.1f}% stationary, "
          f"moving mean {stats.mean_moving_distance_m:.1f} m")
    assert 0.10 <= stats.stationary_fraction <= 0.70
    assert 40.0 <= stats.mean_moving_distance_m <= 250.0

    print("\n  (d) speed difference   paper: ~N(0, 40) km/h")
    print(f"      measured: N({stats.speed_diff_mean_kmh:.2f}, "
          f"{stats.speed_diff_std_kmh:.1f}) km/h")
    # slight negative mean is expected: we only observe approaches, where
    # vehicles predominantly decelerate toward the stop line
    assert abs(stats.speed_diff_mean_kmh) < 12.0
    assert 5.0 <= stats.speed_diff_std_kmh <= 60.0
