"""Extension bench — green-light speed advisory (GLOSA).

The paper's introduction motivates speed advisories as a key consumer
of real-time schedules.  This bench quantifies the benefit end-to-end:
schedules are *identified from taxi traces*, then drive an advisory for
vehicles approaching the lights; outcomes are charged against the true
signals.  Compared: blind cruising, advisory on identified schedules,
advisory on perfect schedules (upper bound).
"""

import numpy as np
import pytest

from conftest import banner
from repro.core import identify_many
from repro.navigation.advisory import advisory_trial


def test_advisory_on_identified_schedules(benchmark, small_city, small_city_data):
    _, partitions = small_city_data
    estimates, _ = identify_many(partitions, 7200.0, serial=False)

    rng = np.random.default_rng(17)
    rows = {"cruise (blind)": [], "advisory (identified)": [], "advisory (oracle)": []}
    stops = {"cruise (blind)": 0, "advisory (identified)": 0, "advisory (oracle)": 0}
    n_trials = 0
    for key, est in sorted(estimates.items()):
        truth = small_city.truth_at(key[0], key[1], 7200.0)
        for _ in range(40):
            t0 = float(rng.uniform(7200.0, 7200.0 + 600.0))
            d = float(rng.uniform(200.0, 800.0))
            adv_t, cruise_t, adv_stopped = advisory_trial(truth, est.schedule, d, t0)
            orc_t, _, orc_stopped = advisory_trial(truth, truth, d, t0)
            rows["cruise (blind)"].append(cruise_t)
            rows["advisory (identified)"].append(adv_t)
            rows["advisory (oracle)"].append(orc_t)
            t_cruise = t0 + d / 14.0
            stops["cruise (blind)"] += truth.wait_if_arriving(t_cruise) > 0
            stops["advisory (identified)"] += adv_stopped
            stops["advisory (oracle)"] += orc_stopped
            n_trials += 1

    banner("Extension — GLOSA speed advisory on identified schedules")
    base = float(np.mean(rows["cruise (blind)"]))
    for name, vals in rows.items():
        m = float(np.mean(vals))
        print(f"  {name:<24} mean approach time {m:6.1f} s "
              f"({100 * (1 - m / base):+5.1f}%)  stopped at red: "
              f"{100 * stops[name] / n_trials:.0f}%")

    print("\n  GLOSA's payoff is smoothness: red-light stops collapse while")
    print("  total approach time stays flat (the safety margin trades the")
    print("  last ~2 s of time for robustness to schedule error).")
    ident = float(np.mean(rows["advisory (identified)"]))
    oracle = float(np.mean(rows["advisory (oracle)"]))
    # stops must collapse under the advisory...
    assert stops["advisory (oracle)"] <= 0.5 * stops["cruise (blind)"]
    assert stops["advisory (identified)"] <= 0.6 * stops["cruise (blind)"]
    # ...without a material travel-time penalty
    assert ident <= base * 1.10 and oracle <= base * 1.10

    key, est = next(iter(sorted(estimates.items())))
    truth = small_city.truth_at(key[0], key[1], 7200.0)
    benchmark(advisory_trial, truth, est.schedule, 500.0, 7300.0)
