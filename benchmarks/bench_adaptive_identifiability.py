"""Adaptive identifiability-frontier bench — the eval beyond the paper.

Sweeps the responsiveness knob ``alpha`` of the adaptive synthetic
scenarios (0 = fixed plan, 1 = fully demand-driven) for each adaptive
controller kind and runs the full identify/monitor pipeline at every
point (``repro.eval.frontier``), pinning two claims per kind:

* **fixed-plan anchor** — the ``alpha = 0`` city and its estimates are
  bit-for-bit identical to the pre-existing fixed-plan pipeline: the
  adaptive machinery is a strict superset of the paper's workload;
* **degradation direction** — the cycle-estimate error at ``alpha = 1``
  strictly exceeds the ``alpha = 0`` error: adaptivity measurably
  erodes identifiability (the monotone frontier the eval quantifies).

The full curves (error, false-alarm rate, miss rate, monitor lag per
``alpha``) are printed and optionally written as a JSON artifact.

Knobs: ``REPRO_FRONTIER_BENCH_KINDS`` (comma-separated subset of
``actuated,gap,fuzzy``), ``REPRO_FRONTIER_BENCH_INTERSECTIONS``
overrides the city size, and ``REPRO_FRONTIER_BENCH_JSON`` writes the
curves as a JSON artifact (used by the non-blocking CI slow job).
"""

import json
import os
import time

from conftest import banner
from repro.eval.frontier import FrontierSpec, run_frontier
from repro.lights.controller import ADAPTIVE_KINDS


def test_adaptive_identifiability_frontier():
    kinds_env = os.environ.get("REPRO_FRONTIER_BENCH_KINDS", "")
    kinds = tuple(k for k in kinds_env.split(",") if k) or ADAPTIVE_KINDS
    n_intersections = int(os.environ.get("REPRO_FRONTIER_BENCH_INTERSECTIONS", "4"))

    payload = {}
    for kind in kinds:
        spec = FrontierSpec(kind=kind, n_intersections=n_intersections)
        banner(
            f"identifiability frontier: kind={kind} "
            f"({2 * n_intersections} lights, alphas={list(spec.alphas)})"
        )
        t0 = time.perf_counter()
        result = run_frontier(spec)
        elapsed = time.perf_counter() - t0
        print(result.summary())
        print(f"sweep wall time: {elapsed:.1f} s")

        assert result.fixed_plan_bitwise_match is True, (
            f"kind={kind}: alpha=0 diverged bit-for-bit from the "
            "fixed-plan pipeline"
        )
        assert result.degradation_monotone(), (
            f"kind={kind}: cycle error did not grow from alpha=0 to alpha=1"
        )
        mismatches = sum(p.backend_mismatches for p in result.points)
        assert mismatches == 0, f"kind={kind}: {mismatches} cross-backend mismatch(es)"

        entry = result.to_dict()
        entry["wall_time_s"] = elapsed
        payload[kind] = entry

    out = os.environ.get("REPRO_FRONTIER_BENCH_JSON")
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote {out}")
