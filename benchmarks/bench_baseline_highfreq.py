"""Baseline bench — event-based (high-frequency) identification vs the
paper's periodicity method, across probe sampling rates.

The paper's core motivating claim: CityDrive/iTrip-class systems need
1–2 Hz probes because they key on per-vehicle kinematic events, so they
"can not be directly employed" on 15–60 s taxi reports.  Both methods
run here on the *same* simulated ground truth, with the reporting
interval swept from 2 s (smartphone-grade) to the taxi fleet mixture —
quantifying where the baseline collapses and the taxi method keeps
working.
"""

import numpy as np
import pytest

from conftest import banner
from repro._util import circular_diff
from repro.core import PipelineConfig, identify_light
from repro.core.highfreq import identify_light_highfreq
from repro.core.signal_types import InsufficientDataError
from repro.lights.intersection import SignalPlan, attach_signals_to_network
from repro.matching import match_trace, partition_by_light
from repro.network import grid_network
from repro.sim import ApproachConfig, CitySimulation
from repro.trace import GPSErrorModel, ReportingPolicy, TraceGenerator

CYCLE, NS_RED = 98.0, 39.0
TIMES = (5400.0, 7200.0, 9000.0, 10800.0)

#: Swept reporting regimes: fixed intervals plus the real fleet mixture.
REGIMES = (
    ("2 s (smartphone)", ((2.0, 1.0),)),
    ("5 s", ((5.0, 1.0),)),
    ("15 s", ((15.0, 1.0),)),
    ("30 s", ((30.0, 1.0),)),
    ("taxi fleet mix", None),  # DEFAULT_INTERVAL_MIXTURE
)


@pytest.fixture(scope="module")
def ground_truth_sim():
    net = grid_network(2, 2, 500.0)
    plans = {i: [SignalPlan(CYCLE, NS_RED, offset_s=19.0 * i)] for i in range(4)}
    signals = attach_signals_to_network(net, plans)
    rates = {s.id: 300.0 for s in net.segments}
    sim = CitySimulation(net, signals, rates, ApproachConfig(segment_length_m=400.0))
    res = sim.run(0.0, 3 * 3600.0, seed=23)
    return net, signals, plans, res


def _score(net, plans, partitions, method):
    hits = attempts = 0
    for key, p in sorted(partitions.items()):
        iid, app = key
        plan = plans[iid][0]
        gt = plan.ns_schedule() if app == "NS" else plan.ew_schedule()
        perp = partitions.get((iid, "EW" if app == "NS" else "NS"))
        for at in TIMES:
            attempts += 1
            try:
                if method == "events":
                    sched = identify_light_highfreq(p, at)
                else:
                    sched = identify_light(
                        p, at, perpendicular=perp, config=PipelineConfig()
                    ).schedule
            except InsufficientDataError:
                continue
            cyc_ok = abs(sched.cycle_s - gt.cycle_s) <= 3.0
            chg = abs(float(circular_diff(
                sched.offset_s + sched.red_s, gt.offset_s + gt.red_s, gt.cycle_s
            )))
            if cyc_ok and chg <= 10.0:
                hits += 1
    return hits, attempts


def test_baseline_vs_periodicity(benchmark, ground_truth_sim):
    net, signals, plans, res = ground_truth_sim

    banner("Baseline — event-based (high-freq) vs the paper's periodicity method")
    print(f"  {'reporting regime':<20} {'event-based':>12} {'periodicity':>12}")
    outcomes = {}
    for name, mixture in REGIMES:
        policy = (
            ReportingPolicy() if mixture is None
            else ReportingPolicy(interval_mixture=mixture)
        )
        gen = TraceGenerator(net, policy=policy, gps=GPSErrorModel())
        trace = gen.generate(res, rng=np.random.default_rng(5))
        partitions = partition_by_light(match_trace(trace, net), net)
        ev_hits, n = _score(net, plans, partitions, "events")
        pd_hits, _ = _score(net, plans, partitions, "periodicity")
        outcomes[name] = (ev_hits / n, pd_hits / n)
        print(f"  {name:<20} {ev_hits:>6}/{n:<5} {pd_hits:>6}/{n:<5}")

    ev_fast, pd_fast = outcomes["2 s (smartphone)"]
    ev_taxi, pd_taxi = outcomes["taxi fleet mix"]
    print("\n  paper's claim: event-based methods need high-frequency probes;")
    print("  the taxi periodicity method must survive the fleet's low rates.")
    print(f"  event-based: {100 * ev_fast:.0f}% at 2 s -> {100 * ev_taxi:.0f}% on taxi mix")
    print(f"  periodicity: {100 * pd_fast:.0f}% at 2 s -> {100 * pd_taxi:.0f}% on taxi mix")
    assert ev_fast >= 0.6, "the baseline must actually work on high-freq data"
    assert ev_taxi <= 0.5 * ev_fast, "and collapse at taxi rates"
    assert pd_taxi >= ev_taxi + 0.2, "the paper's method must win on taxi data"

    # time one baseline identification at high frequency
    policy = ReportingPolicy(interval_mixture=((2.0, 1.0),))
    gen = TraceGenerator(net, policy=policy)
    trace = gen.generate(res, rng=np.random.default_rng(5))
    partitions = partition_by_light(match_trace(trace, net), net)
    key = max(partitions, key=lambda k: len(partitions[k]))
    benchmark.pedantic(
        identify_light_highfreq, args=(partitions[key], TIMES[-1]),
        rounds=1, iterations=1,
    )
