"""Serving-layer latency-SLO bench — thousands of interleaved ops.

Replays >= 8 synthetic city tenants through one ``StreamService`` on a
single event loop: per tenant a producer streams time-sliced chunks
through the bounded ingest queue while a consumer fires advisory
queries paced on snapshot freshness — thousands of interleaved ingests
and evaluates.  Three claims are pinned:

* **latency SLO** — advisory reads are lock-free snapshot loads, so
  p50/p99 stay in single-digit milliseconds no matter how many tenants
  are mid-re-identification;
* **zero isolation violations** — no reader ever observes a version
  going backwards, a torn snapshot map, or (checked post-hoc,
  bit-for-bit) an estimate a fresh batched rebuild would not produce;
* **ingest parity** — writer-side apply cost stays within 10 % of a
  bare single-tenant ``StreamSession`` replaying identical chunks (the
  service adds queueing and snapshot publication, not kernel work).

Knobs: ``REPRO_SERVE_BENCH_TENANTS`` overrides the tenant count and
``REPRO_SERVE_BENCH_JSON`` writes the measured numbers as a JSON
artifact (used by the non-blocking CI slow job).
"""

import json
import os

from conftest import banner
from repro.serve import LoadSpec, run_load

P50_SLO_S = 0.005
P99_SLO_S = 0.050
OVERHEAD_CEILING = 1.10


def _n_tenants():
    env = os.environ.get("REPRO_SERVE_BENCH_TENANTS")
    return max(1, int(env)) if env is not None else 8


def test_serve_latency_slo():
    n_tenants = _n_tenants()
    spec = LoadSpec(
        n_tenants=n_tenants,
        intersections_per_tenant=4,
        n_chunks=24,
        evaluates_per_chunk=10,
        queue_depth=8,
        seed=7,
    )
    banner(
        f"Serving SLO ({spec.n_tenants} tenants, "
        f"{spec.n_chunks} chunks x {2 * spec.intersections_per_tenant} "
        f"lights each)"
    )
    result = run_load(spec)
    for line in result.summary().splitlines():
        print(f"  {line}")
    n_ops = result.n_ingests + result.n_evaluates
    print(f"  total interleaved operations: {n_ops}")

    out_path = os.environ.get("REPRO_SERVE_BENCH_JSON")
    if out_path:
        payload = result.to_dict()
        payload["slo"] = {
            "p50_s": P50_SLO_S,
            "p99_s": P99_SLO_S,
            "overhead_ceiling": OVERHEAD_CEILING,
        }
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"  wrote {out_path}")

    assert n_ops > 1000, "the bench must interleave thousands of operations"
    assert result.n_evaluates == (
        spec.n_tenants * spec.n_chunks * spec.evaluates_per_chunk
    )
    # snapshot isolation: absolute, not statistical
    assert result.stale_violations == 0, "a reader saw a version go backwards"
    assert result.torn_violations == 0, "a reader saw a torn snapshot map"
    assert result.parity_mismatches == 0, (
        "a published estimate diverged from a fresh batched rebuild"
    )
    # latency SLO on the advisory-read path
    assert result.evaluate_p50_s <= P50_SLO_S, (
        f"evaluate p50 {1e3 * result.evaluate_p50_s:.3f} ms over the "
        f"{1e3 * P50_SLO_S:.0f} ms SLO"
    )
    assert result.evaluate_p99_s <= P99_SLO_S, (
        f"evaluate p99 {1e3 * result.evaluate_p99_s:.3f} ms over the "
        f"{1e3 * P99_SLO_S:.0f} ms SLO"
    )
    # writer-side throughput parity with the bare session
    assert result.ingest_overhead <= OVERHEAD_CEILING, (
        f"service apply cost is {result.ingest_overhead:.2f}x the bare "
        f"session (ceiling {OVERHEAD_CEILING}x)"
    )
    # the queue never ballooned past its configured bound
    assert all(
        s.queue_high_water <= spec.queue_depth for s in result.tenant_stats
    )
