"""Parallel-scaling bench — the paper's "easily paralleled" claim.

The paper notes that after partitioning by nearest traffic light, "the
traffic light scheduling identification algorithm for different traffic
lights can be easily paralleled" — this being ICPP, that claim deserves
a measurement.  Two fan-outs are exercised:

* per-light identification (`identify_many`), and
* the fused simulate+sample path (`simulate_and_partition(fused=True)`),
  which keeps the heavyweight 1 Hz tracks inside the workers so only
  ~20x smaller sampled traces cross the process boundary.

What is *asserted* is the part that must hold everywhere: parallel
results are identical to serial ones at any worker count (per-task
seeded RNG streams).  Speedup itself is hardware-dependent — on a
single-core host (like some CI sandboxes) process fan-out can only add
overhead, and the bench reports rather than asserts it.
"""

import os
import time

import numpy as np
import pytest

from conftest import banner
from repro.core import identify_many
from repro.eval import simulate_and_partition
from repro.scenario import shenzhen_scenario


def test_parallel_determinism_and_scaling(benchmark, shenzhen, shenzhen_data):
    _, partitions = shenzhen_data
    times = [10800.0, 12600.0, 14400.0]
    cores = os.cpu_count() or 1

    def run_identify(workers, serial=False):
        t0 = time.perf_counter()
        out = {}
        for at in times:
            ests, _ = identify_many(
                partitions, at, serial=serial, max_workers=workers
            )
            out[at] = {k: (e.cycle_s, e.red_s, e.schedule.offset_s)
                       for k, e in ests.items()}
        return time.perf_counter() - t0, out

    banner(f"Parallel scaling (host has {cores} core(s))")
    t_serial, ref = run_identify(None, serial=True)
    print(f"  identify, serial     {t_serial:6.2f} s   1.00x")
    speedups = []
    for workers in (2, 4):
        t_par, out = run_identify(workers)
        for at in times:
            assert set(out[at]) == set(ref[at]), "parallel must match serial"
            for k in ref[at]:
                assert out[at][k] == pytest.approx(ref[at][k])
        speedups.append(t_serial / t_par)
        print(f"  identify, {workers} workers {t_par:6.2f} s   {t_serial / t_par:4.2f}x")

    # fused simulate+sample: determinism across worker counts
    scn = shenzhen_scenario()
    t0 = time.perf_counter()
    tr_serial, _ = simulate_and_partition(
        scn, 0.0, 1800.0, seed=5, serial=True, fused=True
    )
    t_fused_serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    tr_par, _ = simulate_and_partition(
        scn, 0.0, 1800.0, seed=5, max_workers=4, fused=True
    )
    t_fused_par = time.perf_counter() - t0
    np.testing.assert_array_equal(tr_serial.t, tr_par.t)
    np.testing.assert_array_equal(tr_serial.taxi_id, tr_par.taxi_id)
    np.testing.assert_allclose(tr_serial.lon, tr_par.lon)
    print(f"  fused sim+sample     {t_fused_serial:6.2f} s serial, "
          f"{t_fused_par:6.2f} s @4w — results bitwise identical ✓")

    if cores >= 4:
        # real parallel hardware: the fan-out must actually pay
        assert max(speedups) > 1.3, "multi-core host should see speedup"
    else:
        print("  (single-core host: speedup not expected; determinism is the contract)")

    benchmark.pedantic(run_identify, args=(2,), rounds=1, iterations=1)
