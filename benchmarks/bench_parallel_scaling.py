"""Parallel-scaling bench — the paper's "easily paralleled" claim.

The paper notes that after partitioning by nearest traffic light, "the
traffic light scheduling identification algorithm for different traffic
lights can be easily paralleled" — this being ICPP, that claim deserves
a measurement.  Two fan-outs are exercised:

* per-light identification (`identify_many`), and
* the fused simulate+sample path (`simulate_and_partition(fused=True)`),
  which keeps the heavyweight 1 Hz tracks inside the workers so only
  ~20x smaller sampled traces cross the process boundary.

What is *asserted* is the part that must hold everywhere: parallel
results are identical to serial ones at any worker count (per-task
seeded RNG streams).  Pool speedup itself is hardware-dependent — on a
single-core host (like some CI sandboxes) process fan-out can only add
overhead, and the bench reports rather than asserts it.

The batched backend is different: it replaces per-light Python overhead
with whole-city array kernels, so its speedup does **not** depend on
core count.  ``test_batched_backend_speedup`` pins it at ≥ 3x over
serial on a 64-light city — with bit-for-bit identical estimates.
"""

import os
import time

import numpy as np
import pytest

from conftest import banner
from repro.core import identify_many
from repro.eval import simulate_and_partition
from repro.lights.intersection import SignalPlan, attach_signals_to_network
from repro.network import grid_network
from repro.scenario import shenzhen_scenario
from repro.scenario.small import SmallScenario
from repro.trace.store import PartitionStore


def test_parallel_determinism_and_scaling(benchmark, shenzhen, shenzhen_data):
    _, partitions = shenzhen_data
    times = [10800.0, 12600.0, 14400.0]
    cores = os.cpu_count() or 1

    def run_identify(workers, serial=False):
        t0 = time.perf_counter()
        out = {}
        for at in times:
            ests, _ = identify_many(
                partitions, at, serial=serial, max_workers=workers
            )
            out[at] = {k: (e.cycle_s, e.red_s, e.schedule.offset_s)
                       for k, e in ests.items()}
        return time.perf_counter() - t0, out

    banner(f"Parallel scaling (host has {cores} core(s))")
    t_serial, ref = run_identify(None, serial=True)
    print(f"  identify, serial     {t_serial:6.2f} s   1.00x")
    speedups = []
    for workers in (2, 4):
        t_par, out = run_identify(workers)
        for at in times:
            assert set(out[at]) == set(ref[at]), "parallel must match serial"
            for k in ref[at]:
                assert out[at][k] == pytest.approx(ref[at][k])
        speedups.append(t_serial / t_par)
        print(f"  identify, {workers} workers {t_par:6.2f} s   {t_serial / t_par:4.2f}x")

    # fused simulate+sample: determinism across worker counts
    scn = shenzhen_scenario()
    t0 = time.perf_counter()
    tr_serial, _ = simulate_and_partition(
        scn, 0.0, 1800.0, seed=5, serial=True, fused=True
    )
    t_fused_serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    tr_par, _ = simulate_and_partition(
        scn, 0.0, 1800.0, seed=5, max_workers=4, fused=True
    )
    t_fused_par = time.perf_counter() - t0
    np.testing.assert_array_equal(tr_serial.t, tr_par.t)
    np.testing.assert_array_equal(tr_serial.taxi_id, tr_par.taxi_id)
    np.testing.assert_allclose(tr_serial.lon, tr_par.lon)
    print(f"  fused sim+sample     {t_fused_serial:6.2f} s serial, "
          f"{t_fused_par:6.2f} s @4w — results bitwise identical ✓")

    if cores >= 4:
        # real parallel hardware: the fan-out must actually pay
        assert max(speedups) > 1.3, "multi-core host should see speedup"
    else:
        print("  (single-core host: speedup not expected; determinism is the contract)")

    benchmark.pedantic(run_identify, args=(2,), rounds=1, iterations=1)


def _city64():
    """A 64-light city (8x4 grid, two approaches per intersection)."""
    rng = np.random.default_rng(11)
    net = grid_network(8, 4, 500.0)
    plans = {
        node.id: [
            SignalPlan(
                cycle_s=float(rng.choice([60.0, 90.0, 98.0, 120.0])),
                ns_red_s=39.0,
                offset_s=float(rng.uniform(0.0, 60.0)),
            )
        ]
        for node in net.signalized_intersections()
    }
    signals = attach_signals_to_network(net, plans)
    rates = {seg.id: 400.0 for seg in net.segments}
    return SmallScenario(
        net=net, signals=signals, rate_per_segment=rates, plans=plans
    )


def test_batched_backend_speedup(benchmark):
    """Batched kernels vs the per-light backends on 64 lights x 10 spots.

    The batched backend's win is algorithmic (one FFT, one vectorized
    fold-and-scan, one moving-average pass for the whole city), so
    unlike pool scaling it is asserted: >= 3x over serial, with
    bit-for-bit identical estimates and failure keys.
    """
    scn = _city64()
    _trace, partitions = simulate_and_partition(scn, 0.0, 5400.0, seed=11)
    times = [3600.0 + 180.0 * i for i in range(10)]

    def sweep_serial():
        return {at: identify_many(partitions, at, serial=True) for at in times}

    def sweep_pool():
        return {
            at: identify_many(partitions, at, max_workers=4) for at in times
        }

    def sweep_batched():
        store = PartitionStore.from_partitions(partitions)
        return {
            at: identify_many(store, at, backend="batched") for at in times
        }

    banner(f"Backend comparison ({len(partitions)} lights, "
           f"{len(times)} time spots)")
    t0 = time.perf_counter()
    ref = sweep_serial()
    t_serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    sweep_pool()
    t_pool = time.perf_counter() - t0
    t0 = time.perf_counter()
    out = sweep_batched()
    t_batched = time.perf_counter() - t0

    print(f"  serial   {t_serial:6.2f} s   1.00x")
    print(f"  pool @4w {t_pool:6.2f} s   {t_serial / t_pool:4.2f}x")
    print(f"  batched  {t_batched:6.2f} s   {t_serial / t_batched:4.2f}x")

    for at in times:
        e_ref, f_ref = ref[at]
        e_out, f_out = out[at]
        assert sorted(e_out) == sorted(e_ref)
        assert sorted(f_out) == sorted(f_ref)
        for k in e_ref:
            assert e_out[k].cycle_s == e_ref[k].cycle_s
            assert e_out[k].red_s == e_ref[k].red_s
            assert e_out[k].green_s == e_ref[k].green_s
    assert t_serial / t_batched >= 3.0, (
        f"batched backend must be >= 3x serial, got {t_serial / t_batched:.2f}x"
    )

    benchmark.pedantic(sweep_batched, rounds=1, iterations=1)
