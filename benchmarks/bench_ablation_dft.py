"""Ablation — cycle-identification estimator variants (DESIGN.md #3).

Compares, over the Table II scenario:

1. paper-literal: single DFT argmax, no refinement, no stop-end fusion;
2. +candidate re-scoring (top-5 peaks judged by epoch folding);
3. +fine refinement;
4. full default (refinement + stop-end comb + subharmonic check).

This is the evidence for the repository's main methodological additions
over the paper.
"""

import numpy as np
import pytest

from conftest import banner
from repro.core import PipelineConfig, identify_many
from repro.core.cycle import CycleConfig

VARIANTS = {
    "paper-literal argmax": CycleConfig(n_candidates=1, refine=False, stop_end_weight=0.0),
    "+top-5 fold rescore": CycleConfig(n_candidates=5, refine=False, stop_end_weight=0.0),
    "+fine refinement": CycleConfig(n_candidates=5, refine=True, stop_end_weight=0.0),
    "full (stop-end comb)": CycleConfig(),
}
TIMES = (10800.0, 12600.0, 14400.0, 16200.0, 18000.0)


def test_ablation_dft_variants(benchmark, shenzhen, shenzhen_data):
    _, partitions = shenzhen_data

    banner("Ablation — cycle estimator variants (Table II scenario)")
    summary = {}
    for name, cyc_cfg in VARIANTS.items():
        cfg = PipelineConfig(cycle=cyc_cfg)
        errs = []
        for at in TIMES:
            ests, _ = identify_many(partitions, at, config=cfg)
            for key, est in ests.items():
                gt = shenzhen.truth_at(key[0], key[1], at)
                errs.append(abs(est.cycle_s - gt.cycle_s))
        errs = np.array(errs)
        summary[name] = errs
        print(f"  {name:<24} n={errs.size:3d}  within 3 s: "
              f"{100 * (errs <= 3.0).mean():.0f}%  >10 s: "
              f"{100 * (errs > 10.0).mean():.0f}%  median {np.median(errs):.2f} s")

    lit = (summary["paper-literal argmax"] <= 3.0).mean()
    full = (summary["full (stop-end comb)"] <= 3.0).mean()
    print(f"\n  the full estimator must clearly beat the literal argmax "
          f"({100 * lit:.0f}% -> {100 * full:.0f}%)")
    assert full > lit + 0.10

    benchmark.pedantic(
        identify_many, args=(partitions, TIMES[0]),
        kwargs=dict(config=PipelineConfig(), serial=False),
        rounds=1, iterations=1,
    )
