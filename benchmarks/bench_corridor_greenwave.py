"""Extension bench — corridor green-wave recovery from journey traces.

Vehicles traverse a coordinated 5-light arterial; their multi-segment
taxi reports are the input.  The bench verifies the whole chain:
journey traces → per-light identification → corridor coordination
analysis (relative offsets + progression bandwidth) close to truth.

It also surfaces an honest limit: perfectly coordinated lights stop
almost nobody, so stop-based phase evidence thins exactly where
coordination is best.
"""

import numpy as np
import pytest

from conftest import banner
from repro._util import circular_diff
from repro.core import identify_many
from repro.core.coordination import corridor_report, progression_bandwidth
from repro.matching import match_trace, partition_by_light
from repro.sim import CorridorSpec, simulate_corridor
from repro.trace import TraceGenerator


def test_corridor_green_wave(benchmark):
    spec = CorridorSpec(
        n_lights=5, segment_length_m=500.0, entry_rate_per_hour=450.0,
        cycle_s=100.0, red_s=45.0,
    )
    res = simulate_corridor(spec, 0.0, 5400.0, seed=9)
    gen = TraceGenerator(res.net)
    trace = gen.generate_journeys(res.journeys, rng=np.random.default_rng(2))
    parts = partition_by_light(match_trace(trace, res.net), res.net)

    ests, fails = benchmark.pedantic(
        identify_many, args=(parts, 5400.0), rounds=1, iterations=1
    )

    banner("Extension — green-wave recovery on a coordinated arterial")
    tt = spec.segment_length_m / spec.params.free_speed_mps
    truth = [res.signals[i].schedule_at("EW", 5400.0) for i in range(spec.n_lights)]
    believed = [ests[(i, "EW")].schedule if (i, "EW") in ests else None
                for i in range(spec.n_lights)]
    locked = sum(
        1 for b, t in zip(believed, truth)
        if b is not None and abs(b.cycle_s - t.cycle_s) <= 3.0
    )
    print(f"  lights identified: {len(ests)}/{spec.n_lights}, "
          f"cycle locked: {locked}/{spec.n_lights}")
    assert locked >= spec.n_lights - 1

    print(f"\n  {'link':<8} {'truth bw':>9} {'identified bw':>14}")
    truth_rep = corridor_report(truth, [tt] * (spec.n_lights - 1))
    est_bws, truth_bws = [], []
    for link in truth_rep:
        i, j = link.upstream_index, link.downstream_index
        if believed[i] is None or believed[j] is None:
            continue
        bw = progression_bandwidth(believed[i], believed[j], link.travel_time_s)
        est_bws.append(bw)
        truth_bws.append(link.bandwidth)
        print(f"  {i}->{j:<5} {100 * link.bandwidth:>8.0f}% {100 * bw:>13.0f}%")

    print("\n  a designed green wave must be *detected* as strong progression")
    print("  (caveat: coordination suppresses stops, thinning phase evidence)")
    assert np.mean(truth_bws) >= 0.95, "the scenario really is a green wave"
    assert np.mean(est_bws) >= 0.6, "identified schedules must reveal it"
    # uncoordinated lights would average ~green fraction (= 55%) only
    # when offsets are random; a detected wave must clearly exceed that
    assert np.mean(est_bws) > 0.55
